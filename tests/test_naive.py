"""Unit tests for the naive O(kN) baseline."""

import numpy as np
import pytest

from repro.core.aggregates import MAX
from repro.core.naive import NaiveDetector, naive_detect, naive_operation_count
from repro.core.thresholds import FixedThresholds, NormalThresholds, all_sizes
from repro.testkit.oracles import brute_force_bursts


class TestNaiveDetect:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_bruteforce(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.poisson(4.0, 400).astype(float)
        th = NormalThresholds.from_data(data[:150], 5e-3, all_sizes(15))
        assert naive_detect(data, th).keys() == brute_force_bursts(data, th)

    def test_max_aggregate(self):
        rng = np.random.default_rng(9)
        data = rng.uniform(0, 50, 300)
        th = FixedThresholds({3: 48.0, 7: 49.0})
        want = brute_force_bursts(data, th, aggregate="max")
        assert naive_detect(data, th, MAX).keys() == want

    def test_burst_values(self):
        data = np.array([5.0, 5.0, 0.0])
        th = FixedThresholds({2: 10.0})
        bursts = list(naive_detect(data, th))
        assert bursts[0].key() == (1, 2)
        assert bursts[0].value == 10.0

    def test_empty_stream(self):
        th = FixedThresholds({2: 1.0})
        assert len(naive_detect(np.empty(0), th)) == 0

    def test_operation_count_formula(self):
        assert naive_operation_count(1000, 25) == 2 * 1000 * 25


class TestNaiveDetector:
    def test_chunked_equals_whole(self, rng):
        data = rng.poisson(5.0, 500).astype(float)
        th = NormalThresholds.from_data(data[:200], 1e-2, all_sizes(12))
        want = naive_detect(data, th)
        d = NaiveDetector(th)
        bursts = []
        for lo in range(0, 500, 61):
            bursts.extend(d.process(data[lo : lo + 61]))
        bursts.extend(d.finish())
        assert {b.key() for b in bursts} == want.keys()
        # No duplicates across chunk boundaries.
        assert len(bursts) == len({b.key() for b in bursts})

    def test_detect_convenience(self, rng):
        data = rng.poisson(5.0, 300).astype(float)
        th = NormalThresholds.from_data(data[:100], 1e-2, all_sizes(9))
        assert NaiveDetector(th).detect(data) == naive_detect(data, th)

    def test_operations_counted(self, rng):
        data = rng.poisson(5.0, 200).astype(float)
        th = NormalThresholds.from_data(data[:100], 1e-2, all_sizes(5))
        d = NaiveDetector(th)
        d.detect(data)
        assert d.operations > 0
        assert d.operations <= naive_operation_count(200, 5)

    def test_finish_twice_raises(self):
        d = NaiveDetector(FixedThresholds({2: 1.0}))
        d.finish()
        with pytest.raises(RuntimeError):
            d.finish()

    def test_process_after_finish_raises(self):
        d = NaiveDetector(FixedThresholds({2: 1.0}))
        d.finish()
        with pytest.raises(RuntimeError):
            d.process(np.ones(2))

    def test_tiny_chunks(self, rng):
        data = rng.poisson(3.0, 120).astype(float)
        th = NormalThresholds.from_data(data[:50], 2e-2, all_sizes(8))
        want = naive_detect(data, th)
        d = NaiveDetector(th)
        bursts = []
        for x in data:
            bursts.extend(d.process(np.array([x])))
        bursts.extend(d.finish())
        assert {b.key() for b in bursts} == want.keys()
