"""Unit tests for the alarm-probability analysis (paper §5.1)."""

import numpy as np
import pytest

from repro.core.analysis import (
    alarm_probability,
    exceed_probability_normal,
    level_alarm_probabilities,
    run_metrics,
    structure_alarm_probability,
)
from repro.core.chunked import ChunkedDetector
from repro.core.sbt import shifted_binary_tree
from repro.core.structure import SATStructure
from repro.core.thresholds import FixedThresholds, NormalThresholds, all_sizes


class TestExceedProbability:
    def test_at_mean_is_half(self):
        assert exceed_probability_normal(4, 4 * 10.0, 10.0, 2.0) == pytest.approx(0.5)

    def test_far_above_mean_is_tiny(self):
        assert exceed_probability_normal(4, 1000.0, 10.0, 2.0) < 1e-10

    def test_zero_sigma_degenerates_to_step(self):
        assert exceed_probability_normal(4, 39.0, 10.0, 0.0) == 1.0
        assert exceed_probability_normal(4, 41.0, 10.0, 0.0) == 0.0


class TestAlarmProbabilityFormula:
    def test_consistent_with_threshold_plugin(self):
        # The paper's (T, w) form must equal the direct tail probability
        # of the normal threshold.
        mu, sigma, p = 10.0, 3.0, 1e-4
        w, big_w = 8, 24
        th = NormalThresholds(mu, sigma, p, [w])
        direct = exceed_probability_normal(big_w, th.threshold(w), mu, sigma)
        paper_form = alarm_probability(big_w, w, mu, sigma, p)
        assert paper_form == pytest.approx(direct, rel=1e-9)

    def test_equal_sizes_gives_p(self):
        # T = 1: the alarm probability is exactly the burst probability.
        assert alarm_probability(8, 8, 10.0, 3.0, 1e-3) == pytest.approx(1e-3)

    def test_increases_with_mu_over_sigma(self):
        # Paper: larger mu/sigma -> larger P_a.
        lo = alarm_probability(16, 4, 1.0, 2.0, 1e-4)
        hi = alarm_probability(16, 4, 8.0, 2.0, 1e-4)
        assert hi > lo

    def test_decreases_with_smaller_burst_probability(self):
        hi = alarm_probability(16, 4, 5.0, 2.0, 1e-2)
        lo = alarm_probability(16, 4, 5.0, 2.0, 1e-8)
        assert lo < hi

    def test_decreases_with_smaller_bounding_ratio(self):
        # Paper: as T decreases, so does P_a (same trigger size w).
        tight = alarm_probability(6, 4, 5.0, 2.0, 1e-4)  # T = 1.5
        loose = alarm_probability(16, 4, 5.0, 2.0, 1e-4)  # T = 4
        assert tight < loose

    def test_increases_with_window_size(self):
        # Paper: at fixed T, larger w -> larger P_a.
        small = alarm_probability(8, 2, 5.0, 2.0, 1e-4)  # T = 4
        large = alarm_probability(64, 16, 5.0, 2.0, 1e-4)  # T = 4
        assert large > small

    def test_exponential_invariance_in_beta(self):
        # mu/sigma = 1 for every beta: P_a must not depend on beta.
        a = alarm_probability(16, 4, 10.0, 10.0, 1e-4)
        b = alarm_probability(16, 4, 1000.0, 1000.0, 1e-4)
        assert a == pytest.approx(b, rel=1e-9)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            alarm_probability(4, 8, 1.0, 1.0, 0.5)


class TestLevelProbabilities:
    def test_per_level_prediction_matches_measurement(self, rng):
        # The normal-approximation prediction should land near the
        # measured alarm rate on Poisson data (CLT regime).
        lam = 20.0
        data = rng.poisson(lam, 100_000).astype(float)
        th = NormalThresholds(lam, np.sqrt(lam), 1e-3, all_sizes(32))
        sbt = shifted_binary_tree(32)
        predicted = level_alarm_probabilities(sbt, th, lam, np.sqrt(lam))
        detector = ChunkedDetector(sbt, th)
        detector.detect(data)
        measured = detector.counters.alarm_probabilities()
        # Compare mid levels (level 1 suffers discreteness; top levels
        # have few nodes).
        for i in (2, 3, 4):
            assert measured[i] == pytest.approx(predicted[i], abs=0.05)

    def test_inactive_level_predicts_zero(self):
        structure = SATStructure.from_pairs([(4, 2), (10, 4)])
        th = FixedThresholds({2: 50.0, 3: 60.0})  # nothing at level 2
        probs = level_alarm_probabilities(structure, th, 5.0, 2.0)
        assert probs[1] == 0.0

    def test_structure_alarm_probability_weighting(self):
        structure = SATStructure.from_pairs([(4, 2), (10, 4)])
        th = NormalThresholds(5.0, 2.0, 1e-3, all_sizes(7))
        # Level 1: shift 2, 2 sizes -> weight 4; level 2: shift 4, 4
        # sizes -> weight 16.
        agg = structure_alarm_probability(
            structure, np.array([1.0, 0.0]), th
        )
        assert agg == pytest.approx(4 / 20)

    def test_structure_alarm_probability_no_sizes(self):
        structure = SATStructure.from_pairs([(4, 2)])
        th = FixedThresholds({1: 1.0})
        assert structure_alarm_probability(structure, np.array([0.5]), th) == 0.0


class TestRunMetrics:
    def test_metrics_from_run(self, rng):
        data = rng.poisson(5.0, 5000).astype(float)
        th = NormalThresholds.from_data(data[:1000], 1e-3, all_sizes(16))
        sbt = shifted_binary_tree(16)
        detector = ChunkedDetector(sbt, th)
        bursts = detector.detect(data)
        metrics = run_metrics(sbt, th, detector.counters)
        assert metrics.operations == detector.counters.total_operations
        assert metrics.bursts == len(bursts)
        assert 0.0 <= metrics.alarm_probability <= 1.0
        assert metrics.density == pytest.approx(sbt.density(16))
        assert set(metrics.as_dict()) == {
            "operations",
            "updates",
            "filter_comparisons",
            "search_cells",
            "alarms",
            "bursts",
            "density",
            "alarm_probability",
        }
