"""Unit and pipeline tests for the burst-correlation mining layer."""

import numpy as np
import pytest

from repro.core.events import Burst, BurstSet
from repro.mining.burst_strings import burst_indicator, burst_indicators
from repro.mining.correlation import (
    correlation_matrix,
    indicator_correlation,
    jaccard_similarity,
    smear,
)
from repro.mining.groups import correlated_groups, mine_burst_correlations
from repro.streams.correlated import StockUniverse


class TestBurstIndicator:
    def test_marks_end_times(self):
        bursts = BurstSet([Burst(3, 10, 1.0), Burst(7, 10, 1.0), Burst(4, 30, 1.0)])
        ind = burst_indicator(bursts, 10, 10)
        assert list(np.nonzero(ind)[0]) == [3, 7]

    def test_multi_size(self):
        bursts = [Burst(3, 10, 1.0), Burst(4, 30, 1.0)]
        table = burst_indicators(bursts, 10, [10, 30, 60])
        assert table[10][3] == 1
        assert table[30][4] == 1
        assert table[60].sum() == 0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            burst_indicator([Burst(10, 5, 1.0)], 10, 5)

    def test_negative_length(self):
        with pytest.raises(ValueError):
            burst_indicator([], -1, 5)


class TestSmear:
    def test_zero_tolerance_identity(self):
        ind = np.array([0, 1, 0, 0], dtype=np.int8)
        np.testing.assert_array_equal(smear(ind, 0), ind)

    def test_widens_neighbourhood(self):
        ind = np.zeros(7, dtype=np.int8)
        ind[3] = 1
        out = smear(ind, 2)
        assert list(out) == [0, 1, 1, 1, 1, 1, 0]

    def test_clips_at_edges(self):
        ind = np.zeros(3, dtype=np.int8)
        ind[0] = 1
        assert list(smear(ind, 5)) == [1, 1, 1]

    def test_negative_tolerance(self):
        with pytest.raises(ValueError):
            smear(np.zeros(3), -1)


class TestCorrelationMeasures:
    def test_identical_strings_correlate_fully(self):
        a = np.array([0, 1, 0, 1, 0])
        assert indicator_correlation(a, a) == pytest.approx(1.0)
        assert jaccard_similarity(a, a) == 1.0

    def test_disjoint_strings(self):
        a = np.array([1, 0, 0, 0])
        b = np.array([0, 0, 0, 1])
        assert indicator_correlation(a, b) < 0
        assert jaccard_similarity(a, b) == 0.0

    def test_constant_string_gives_zero(self):
        a = np.zeros(5)
        b = np.array([0, 1, 0, 0, 0])
        assert indicator_correlation(a, b) == 0.0
        assert jaccard_similarity(a, np.zeros(5)) == 0.0

    def test_tolerance_aligns_near_misses(self):
        a = np.zeros(50)
        b = np.zeros(50)
        a[10] = 1
        b[12] = 1
        assert indicator_correlation(a, b, tolerance=0) <= 0
        assert indicator_correlation(a, b, tolerance=3) > 0.5
        assert jaccard_similarity(a, b, tolerance=3) > 0.3

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            indicator_correlation(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            jaccard_similarity(np.zeros(3), np.zeros(4))

    def test_matrix_symmetric(self):
        ind = {
            "A": np.array([0, 1, 0, 1]),
            "B": np.array([0, 1, 0, 1]),
            "C": np.array([1, 0, 0, 0]),
        }
        names, m = correlation_matrix(ind)
        assert names == ["A", "B", "C"]
        np.testing.assert_allclose(m, m.T)
        assert m[0, 1] == pytest.approx(1.0)
        assert m[0, 0] == 1.0

    def test_matrix_empty_diagonal(self):
        names, m = correlation_matrix({"A": np.zeros(4)})
        assert m[0, 0] == 0.0

    def test_matrix_jaccard(self):
        ind = {"A": np.array([1, 1, 0]), "B": np.array([1, 0, 0])}
        _, m = correlation_matrix(ind, measure="jaccard")
        assert m[0, 1] == pytest.approx(0.5)

    def test_matrix_invalid_measure(self):
        with pytest.raises(ValueError):
            correlation_matrix({"A": np.zeros(3)}, measure="cosine")


class TestGroups:
    def test_connected_components(self):
        names = ["A", "B", "C", "D"]
        m = np.eye(4)
        m[0, 1] = m[1, 0] = 0.9
        m[1, 2] = m[2, 1] = 0.8
        groups = correlated_groups(names, m, cutoff=0.5)
        assert groups == (("A", "B", "C"),)

    def test_singletons_dropped(self):
        names = ["A", "B"]
        groups = correlated_groups(names, np.eye(2), cutoff=0.5)
        assert groups == ()

    def test_ordering_largest_first(self):
        names = ["A", "B", "C", "D", "E"]
        m = np.eye(5)
        m[3, 4] = m[4, 3] = 0.9
        for i, j in [(0, 1), (1, 2)]:
            m[i, j] = m[j, i] = 0.9
        groups = correlated_groups(names, m, cutoff=0.5)
        assert groups[0] == ("A", "B", "C")
        assert groups[1] == ("D", "E")


class TestPipeline:
    def test_recovers_planted_sector_structure(self):
        uni = StockUniverse(
            seed=10,
            sectors={"x": ("AA", "BB"), "y": ("CC", "DD")},
            market_event_rate=0.0,
            sector_event_rate=3e-4,
            single_event_rate=0.0,
            magnitude_range=(15.0, 25.0),
        )
        data, events = uni.generate(30_000)
        assert any(e.kind == "sector" for e in events)
        reports = mine_burst_correlations(
            data,
            window_sizes=(10, 30),
            burst_probability=1e-5,
            cutoff=0.3,
            training_points=5_000,
        )
        # Every reported pair must be same-sector (no market events are
        # injected, so cross-sector correlation would be spurious).
        found_any = False
        for report in reports:
            for a, b in report.pair_correlations:
                found_any = True
                assert uni.sector_of(a) == uni.sector_of(b), (a, b)
        assert found_any

    def test_report_str(self):
        from repro.mining.groups import CorrelationReport

        r = CorrelationReport(30, (("A", "B"),), {("A", "B"): 0.9})
        assert "30s" in str(r) and "A/B" in str(r)
        empty = CorrelationReport(10, (), {})
        assert "(none)" in str(empty)

    def test_input_validation(self):
        with pytest.raises(ValueError, match="no stock data"):
            mine_burst_correlations({})
        with pytest.raises(ValueError, match="equal stream length"):
            mine_burst_correlations(
                {"A": np.zeros(10), "B": np.zeros(11)}
            )
