"""Calibration and behaviour tests for the IBM/TAQ volume surrogate."""

import numpy as np
import pytest

from repro.streams.stats import describe
from repro.streams.taq import TAQVolumeSimulator

_WEEK = 7 * 86_400


class TestCalibration:
    @pytest.fixture(scope="class")
    def sample(self):
        # Two whole weeks so the session/off-session mix is exact.
        return TAQVolumeSimulator(seed=2).generate(2 * _WEEK)

    def test_extreme_skew(self, sample):
        # Paper Table 2: std (2796) is ~10x the mean (287).  The exact
        # ratio fluctuates with the heavy tail; require the right regime.
        stats = describe(sample)
        assert stats.std > 4 * stats.mean

    def test_mean_order_of_magnitude(self, sample):
        # Paper mean 287.06; allow a factor ~2 band (jump realizations).
        assert 120 < describe(sample).mean < 650

    def test_zero_floor_and_capped_max(self, sample):
        stats = describe(sample)
        assert stats.min == 0.0
        assert stats.max <= 2.8e6  # paper max 2,806,500

    def test_mass_concentrated_near_zero(self, sample):
        # Paper Fig. 17b: ~99% of seconds in the first 5000-wide bucket.
        frac = (sample < 5000).mean()
        assert frac > 0.93

    def test_nights_and_weekends_are_zero(self):
        sim = TAQVolumeSimulator(seed=3)
        week = sim.generate(_WEEK)  # starts Monday 00:00
        # Saturday (day 5): all zero.
        saturday = week[5 * 86_400 : 6 * 86_400]
        assert saturday.sum() == 0.0
        # Monday 03:00: pre-open, zero.
        assert week[3 * 3600] == 0.0

    def test_sessions_have_volume(self):
        sim = TAQVolumeSimulator(seed=3)
        week = sim.generate(_WEEK)
        monday_session = week[int(9.5 * 3600) : 16 * 3600]
        assert (monday_session > 0).mean() > 0.99


class TestSessionMask:
    def test_mask_boundaries(self):
        sim = TAQVolumeSimulator()
        open_s = int(9.5 * 3600)
        t = np.array(
            [open_s - 1, open_s, 16 * 3600 - 1, 16 * 3600, 5 * 86_400 + open_s]
        )
        mask = sim.session_mask(t)
        assert list(mask) == [False, True, True, False, False]

    def test_five_trading_days(self):
        sim = TAQVolumeSimulator()
        t = np.arange(_WEEK)
        active = sim.session_mask(t).sum()
        assert active == 5 * (16 * 3600 - int(9.5 * 3600))


class TestInterface:
    def test_deterministic(self):
        sim = TAQVolumeSimulator(seed=4)
        np.testing.assert_array_equal(sim.generate(5000), sim.generate(5000))

    def test_segments_differ(self):
        sim = TAQVolumeSimulator(seed=4)
        open_s = int(9.5 * 3600)
        a = sim.generate(5000, start_second=open_s)
        b = sim.generate(5000, start_second=open_s + _WEEK)
        assert not np.array_equal(a, b)

    def test_all_zero_outside_sessions(self):
        sim = TAQVolumeSimulator(seed=4)
        assert sim.generate(3600, start_second=0).sum() == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TAQVolumeSimulator(mean_session_volume=0.0)
        with pytest.raises(ValueError):
            TAQVolumeSimulator(jump_probability=1.5)

    def test_integer_volumes(self):
        sim = TAQVolumeSimulator(seed=5)
        data = sim.generate(20_000, start_second=int(9.5 * 3600))
        assert np.all(data == np.round(data))
