"""Unit tests for aggregate functions and window engines."""

import numpy as np
import pytest

from repro.core.aggregates import (
    COUNT,
    MAX,
    SUM,
    MaxWindowEngine,
    SumWindowEngine,
    aggregate_by_name,
    sliding_aggregate,
    sliding_max,
    sliding_sum,
)


class TestAggregateFunction:
    def test_sum_identity_and_combine(self):
        assert SUM.identity == 0.0
        assert SUM.combine(2.0, 3.0) == 5.0
        assert SUM.reduce(np.array([1.0, 2.0, 3.0])) == 6.0

    def test_max_identity_and_combine(self):
        assert MAX.identity == 0.0
        assert MAX.combine(2.0, 3.0) == 3.0
        assert MAX.reduce(np.array([1.0, 5.0, 3.0])) == 5.0

    def test_count_is_sum(self):
        assert COUNT is SUM

    def test_lookup_by_name(self):
        assert aggregate_by_name("sum") is SUM
        assert aggregate_by_name("max") is MAX
        assert aggregate_by_name("count") is SUM

    def test_lookup_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            aggregate_by_name("median")

    def test_make_engine_types(self):
        assert isinstance(SUM.make_engine(4), SumWindowEngine)
        assert isinstance(MAX.make_engine(4), MaxWindowEngine)

    def test_sliding_dispatch(self):
        data = np.array([1.0, 3.0, 2.0])
        assert list(SUM.sliding(data, 2)) == [4.0, 5.0]
        assert list(MAX.sliding(data, 2)) == [3.0, 3.0]


class TestSlidingKernels:
    def test_sliding_sum_basic(self):
        out = sliding_sum(np.array([1.0, 2.0, 3.0, 4.0]), 2)
        assert list(out) == [3.0, 5.0, 7.0]

    def test_sliding_sum_full_window(self):
        out = sliding_sum(np.array([1.0, 2.0, 3.0]), 3)
        assert list(out) == [6.0]

    def test_sliding_sum_window_exceeds_data(self):
        assert sliding_sum(np.array([1.0]), 5).size == 0

    def test_sliding_sum_size_one(self):
        data = np.array([4.0, 0.0, 2.0])
        assert list(sliding_sum(data, 1)) == [4.0, 0.0, 2.0]

    def test_sliding_sum_invalid_size(self):
        with pytest.raises(ValueError):
            sliding_sum(np.array([1.0]), 0)

    def test_sliding_max_basic(self):
        out = sliding_max(np.array([1.0, 5.0, 2.0, 4.0]), 2)
        assert list(out) == [5.0, 5.0, 4.0]

    def test_sliding_max_size_one_copies(self):
        data = np.array([2.0, 1.0])
        out = sliding_max(data, 1)
        out[0] = 99.0
        assert data[0] == 2.0

    def test_sliding_max_window_exceeds_data(self):
        assert sliding_max(np.array([1.0]), 2).size == 0

    @pytest.mark.parametrize("size", [1, 2, 3, 5, 7, 16, 31])
    def test_sliding_max_random_vs_bruteforce(self, rng, size):
        data = rng.uniform(0, 100, 200)
        got = sliding_max(data, size)
        want = [data[i : i + size].max() for i in range(data.size - size + 1)]
        np.testing.assert_allclose(got, want)

    @pytest.mark.parametrize("size", [1, 2, 3, 5, 7, 16, 31])
    def test_sliding_sum_random_vs_bruteforce(self, rng, size):
        data = rng.uniform(0, 100, 200)
        got = sliding_sum(data, size)
        want = [data[i : i + size].sum() for i in range(data.size - size + 1)]
        np.testing.assert_allclose(got, want)

    def test_sliding_aggregate_unknown(self):
        from repro.core.aggregates import AggregateFunction

        weird = AggregateFunction("median", 0.0, min, np.median)
        with pytest.raises(ValueError, match="no sliding kernel"):
            sliding_aggregate(weird, np.array([1.0]), 1)


class TestSumWindowEngine:
    def test_single_append_values(self):
        engine = SumWindowEngine(history=8)
        engine.append(np.array([1.0, 2.0, 3.0, 4.0]))
        assert engine.length == 4
        assert engine.value(3, 2) == 7.0
        assert engine.value(3, 4) == 10.0

    def test_clamped_window_at_stream_start(self):
        engine = SumWindowEngine(history=8)
        engine.append(np.array([5.0, 1.0]))
        # A size-4 window ending at t=1 only covers t=0..1.
        assert engine.value(1, 4) == 6.0

    def test_values_vectorized_matches_scalar(self, rng):
        engine = SumWindowEngine(history=16)
        data = rng.uniform(0, 10, 50)
        engine.append(data)
        ends = np.array([3, 10, 20, 49])
        got = engine.values(ends, 7)
        want = [engine.value(int(t), 7) for t in ends]
        np.testing.assert_allclose(got, want)

    def test_values_grid_matches_scalar(self, rng):
        engine = SumWindowEngine(history=16)
        engine.append(rng.uniform(0, 10, 60))
        ends = np.array([20, 30, 40])
        sizes = np.array([1, 4, 9])
        grid = engine.values_grid(ends, sizes)
        assert grid.shape == (3, 3)
        for i, w in enumerate(sizes):
            for j, t in enumerate(ends):
                assert grid[i, j] == pytest.approx(engine.value(int(t), int(w)))

    def test_multi_chunk_equals_single_chunk(self, rng):
        # Queries must end within the most recent chunk (engine contract).
        data = rng.uniform(0, 5, 100)
        one = SumWindowEngine(history=20)
        one.append(data)
        many = SumWindowEngine(history=20)
        for lo in range(0, 100, 30):
            many.append(data[lo : lo + 30])
        for t in (90, 95, 99):
            for w in (1, 5, 20):
                assert many.value(t, w) == pytest.approx(one.value(t, w))

    def test_history_violation_raises(self):
        engine = SumWindowEngine(history=4)
        for _ in range(20):
            engine.append(np.ones(10))
        with pytest.raises(IndexError, match="history"):
            engine.value(50, 40)

    def test_end_beyond_stream_raises(self):
        engine = SumWindowEngine(history=4)
        engine.append(np.ones(3))
        with pytest.raises(IndexError, match="beyond"):
            engine.value(3, 1)

    def test_bad_size_raises(self):
        engine = SumWindowEngine(history=4)
        engine.append(np.ones(3))
        with pytest.raises(ValueError):
            engine.value(2, 0)

    def test_bad_history_raises(self):
        with pytest.raises(ValueError):
            SumWindowEngine(history=0)

    def test_append_requires_1d(self):
        engine = SumWindowEngine(history=4)
        with pytest.raises(ValueError, match="1-D"):
            engine.append(np.ones((2, 2)))

    def test_empty_values_query(self):
        engine = SumWindowEngine(history=4)
        engine.append(np.ones(3))
        assert engine.values(np.array([], dtype=np.int64), 2).size == 0


class TestMaxWindowEngine:
    def test_basic_values(self):
        engine = MaxWindowEngine(history=8)
        engine.append(np.array([1.0, 7.0, 3.0, 5.0]))
        assert engine.value(3, 2) == 5.0
        assert engine.value(3, 3) == 7.0
        assert engine.value(3, 4) == 7.0

    def test_clamped_window_at_stream_start(self):
        engine = MaxWindowEngine(history=8)
        engine.append(np.array([9.0, 1.0]))
        assert engine.value(1, 5) == 9.0

    def test_values_and_grid_match_scalar(self, rng):
        engine = MaxWindowEngine(history=32)
        engine.append(rng.uniform(0, 100, 80))
        ends = np.array([40, 50, 79])
        sizes = np.array([1, 3, 17])
        vals = engine.values(ends, 3)
        for j, t in enumerate(ends):
            assert vals[j] == engine.value(int(t), 3)
        grid = engine.values_grid(ends, sizes)
        for i, w in enumerate(sizes):
            for j, t in enumerate(ends):
                assert grid[i, j] == engine.value(int(t), int(w))

    def test_multi_chunk_equals_single_chunk(self, rng):
        data = rng.uniform(0, 5, 100)
        one = MaxWindowEngine(history=20)
        one.append(data)
        many = MaxWindowEngine(history=20)
        for lo in range(0, 100, 30):
            many.append(data[lo : lo + 30])
        for t in (92, 99):
            for w in (1, 7, 20):
                assert many.value(t, w) == one.value(t, w)

    def test_matches_bruteforce(self, rng):
        data = rng.uniform(0, 1000, 64)
        engine = MaxWindowEngine(history=64)
        engine.append(data)
        for t in range(0, 64, 5):
            for w in (1, 2, 3, 8, 13):
                start = max(0, t - w + 1)
                assert engine.value(t, w) == data[start : t + 1].max()

    def test_history_violation_raises(self):
        engine = MaxWindowEngine(history=4)
        for _ in range(10):
            engine.append(np.ones(10))
        with pytest.raises(IndexError, match="history"):
            engine.value(99, 60)
