"""Tests for the experiment harness plumbing."""

import numpy as np
import pytest

from repro.core.sbt import shifted_binary_tree
from repro.core.thresholds import NormalThresholds, all_sizes
from repro.experiments.common import (
    SCALES,
    ExperimentTable,
    format_table,
    get_scale,
    measure_detector,
    measure_naive,
)
from repro.experiments.datasets import ibm_stream, sdss_stream, training_prefix


class TestScales:
    def test_presets_exist(self):
        assert set(SCALES) == {"small", "medium", "full"}

    def test_get_scale_by_name(self):
        assert get_scale("medium").name == "medium"

    def test_get_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert get_scale().name == "medium"

    def test_get_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "small"

    def test_get_scale_unknown(self):
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_window_cap(self):
        scale = SCALES["small"]
        assert scale.window_cap(100) == 100
        assert scale.window_cap(10_000) == scale.max_window_cap

    def test_scales_increase(self):
        assert (
            SCALES["small"].stream_length
            < SCALES["medium"].stream_length
            < SCALES["full"].stream_length
        )


class TestMeasurement:
    def test_measure_detector(self, rng):
        data = rng.poisson(5.0, 5000).astype(float)
        th = NormalThresholds.from_data(data[:1000], 1e-3, all_sizes(16))
        m = measure_detector(shifted_binary_tree(16), th, data, "SBT")
        assert m.label == "SBT"
        assert m.operations > 0
        assert m.wall_seconds > 0
        assert 0 <= m.alarm_probability <= 1
        assert m.ops_per_point(data.size) == pytest.approx(
            m.operations / data.size
        )

    def test_measure_naive(self, rng):
        data = rng.poisson(5.0, 2000).astype(float)
        th = NormalThresholds.from_data(data[:500], 1e-3, all_sizes(8))
        m = measure_naive(th, data)
        assert m.operations > 0
        assert m.alarm_probability == 1.0


class TestExperimentTable:
    def test_add_and_column(self):
        t = ExperimentTable("T", ["a", "b"])
        t.add(1, 2.5)
        t.add(3, 4.5)
        assert t.column("a") == [1, 3]
        assert t.column("b") == [2.5, 4.5]

    def test_add_wrong_arity(self):
        t = ExperimentTable("T", ["a"])
        with pytest.raises(ValueError):
            t.add(1, 2)

    def test_str_contains_everything(self):
        t = ExperimentTable("My Title", ["col"], notes=["hello"])
        t.add(42)
        text = str(t)
        assert "My Title" in text
        assert "col" in text and "42" in text
        assert "note: hello" in text

    def test_format_table_alignment(self):
        text = format_table(["x", "yyyy"], [[1, 2], [100, 20000]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_format_large_and_small_floats(self):
        text = format_table(["v"], [[1e-7], [2.5e8], [3.25]])
        assert "1e-07" in text
        assert "2.5e+08" in text
        assert "3.25" in text

    def test_format_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestDatasets:
    def test_streams_deterministic_and_scaled(self):
        scale = SCALES["small"]
        a = sdss_stream(scale)
        b = sdss_stream(scale)
        np.testing.assert_array_equal(a, b)
        assert a.size == scale.stream_length
        assert ibm_stream(scale).size == scale.stream_length

    def test_segments_differ(self):
        scale = SCALES["small"]
        assert not np.array_equal(
            sdss_stream(scale, 0), sdss_stream(scale, 3)
        )
        assert not np.array_equal(ibm_stream(scale, 0), ibm_stream(scale, 3))

    def test_ibm_training_prefix_is_in_session(self):
        # The IBM stream starts at Monday 09:30, so the training prefix
        # must contain live trading volume (not the overnight zeros).
        scale = SCALES["small"]
        prefix = training_prefix(ibm_stream(scale), scale)
        assert prefix.size == scale.training_length
        assert (prefix > 0).mean() > 0.9

    def test_training_prefix_clamps(self):
        scale = SCALES["small"]
        short = np.arange(10.0)
        np.testing.assert_array_equal(training_prefix(short, scale), short)
