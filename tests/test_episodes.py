"""Tests for burst-episode reconstruction."""

import numpy as np
import pytest

from repro.core.chunked import ChunkedDetector
from repro.core.events import Burst, BurstSet
from repro.core.search import train_structure
from repro.core.thresholds import FixedThresholds, NormalThresholds, all_sizes
from repro.mining import burst_episodes
from repro.streams.generators import planted_burst_stream, poisson_stream


def fixed(table):
    return FixedThresholds(table)


class TestGrouping:
    def test_single_burst_single_episode(self):
        th = fixed({3: 10.0})
        eps = burst_episodes([Burst(5, 3, 12.0)], th)
        assert len(eps) == 1
        assert (eps[0].start, eps[0].end) == (3, 5)
        assert eps[0].duration == 3
        assert eps[0].peak_excess == pytest.approx(2.0)

    def test_overlapping_windows_merge(self):
        th = fixed({3: 10.0, 5: 12.0})
        bursts = [Burst(5, 3, 11.0), Burst(6, 5, 20.0), Burst(7, 3, 10.5)]
        eps = burst_episodes(bursts, th)
        assert len(eps) == 1
        ep = eps[0]
        assert (ep.start, ep.end) == (2, 7)
        assert ep.num_windows == 3
        # Strongest by excess: 20-12=8 beats 11-10=1 and 10.5-10=0.5.
        assert ep.strongest.key() == (6, 5)

    def test_disjoint_events_stay_separate(self):
        th = fixed({2: 5.0})
        bursts = [Burst(3, 2, 6.0), Burst(50, 2, 7.0)]
        eps = burst_episodes(bursts, th)
        assert len(eps) == 2
        assert eps[0].start < eps[1].start

    def test_gap_parameter_bridges_nearby(self):
        th = fixed({2: 5.0})
        bursts = [Burst(3, 2, 6.0), Burst(8, 2, 7.0)]  # extents [2,3], [7,8]
        assert len(burst_episodes(bursts, th, gap=0)) == 2
        assert len(burst_episodes(bursts, th, gap=3)) == 1

    def test_adjacent_extents_merge_without_gap(self):
        th = fixed({2: 5.0})
        # Extents [2,3] and [4,5] touch back-to-back.
        bursts = [Burst(3, 2, 6.0), Burst(5, 2, 6.0)]
        assert len(burst_episodes(bursts, th, gap=0)) == 1

    def test_empty(self):
        assert burst_episodes(BurstSet(), fixed({2: 5.0})) == []

    def test_negative_gap(self):
        with pytest.raises(ValueError):
            burst_episodes([], fixed({2: 5.0}), gap=-1)

    def test_str(self):
        th = fixed({3: 10.0})
        text = str(burst_episodes([Burst(5, 3, 12.0)], th)[0])
        assert "episode [3, 5]" in text


class TestEndToEnd:
    def test_planted_events_become_one_episode_each(self):
        background = poisson_stream(4.0, 30_000, seed=2)
        injections = [(8_000, 16, 25.0), (20_000, 64, 8.0)]
        data, applied = planted_burst_stream(background, injections)
        train = poisson_stream(4.0, 8_000, seed=3)
        th = NormalThresholds.from_data(train, 1e-7, all_sizes(128))
        structure = train_structure(train, th)
        bursts = ChunkedDetector(structure, th).detect(data)
        episodes = burst_episodes(bursts, th, gap=64)
        # Each injected event yields exactly one episode overlapping it.
        for start, width, _ in applied:
            hits = [
                ep
                for ep in episodes
                if ep.start <= start + width - 1 and ep.end >= start
            ]
            assert len(hits) == 1, (start, hits)
            # The strongest window sits inside the event's neighbourhood.
            best = hits[0].strongest
            assert start - 128 <= best.start <= start + width + 128

    def test_episode_count_far_below_window_count(self):
        background = poisson_stream(4.0, 20_000, seed=4)
        data, _ = planted_burst_stream(background, [(5_000, 32, 20.0)])
        train = poisson_stream(4.0, 8_000, seed=5)
        th = NormalThresholds.from_data(train, 1e-7, all_sizes(64))
        structure = train_structure(train, th)
        bursts = ChunkedDetector(structure, th).detect(data)
        episodes = burst_episodes(bursts, th)
        assert len(bursts) > 10 * len(episodes)
