"""Unit tests for the cost models."""

import numpy as np
import pytest

from repro.core.chunked import ChunkedDetector
from repro.core.sbt import shifted_binary_tree
from repro.core.search.cost import EmpiricalCostModel, TheoreticalCostModel
from repro.core.search.training import (
    EmpiricalProbabilityModel,
    NormalProbabilityModel,
)
from repro.core.structure import SATStructure, single_level_structure
from repro.core.thresholds import FixedThresholds, NormalThresholds, all_sizes


@pytest.fixture
def poisson_setup(rng):
    data = rng.poisson(8.0, 20_000).astype(float)
    th = NormalThresholds.from_data(data[:5000], 1e-4, all_sizes(40))
    return data, th


class TestTheoreticalCostModel:
    def test_additive_per_level(self, poisson_setup):
        data, th = poisson_setup
        model = TheoreticalCostModel(th, EmpiricalProbabilityModel(data[:5000]))
        s = SATStructure.from_pairs([(4, 2), (12, 4), (44, 8)])
        total = model.base_term()
        for i in range(1, len(s.levels)):
            total += model.level_term(s.levels[i - 1], s.levels[i])
        assert model.cost_per_point(s) == pytest.approx(total)

    def test_base_term_includes_size_one_check(self):
        th1 = FixedThresholds({1: 5.0, 4: 9.0})
        th2 = FixedThresholds({4: 9.0})
        prob = NormalProbabilityModel(1.0, 1.0)
        assert TheoreticalCostModel(th1, prob).base_term() == 2.0
        assert TheoreticalCostModel(th2, prob).base_term() == 1.0

    def test_normalized_cost_divides_by_coverage(self, poisson_setup):
        _, th = poisson_setup
        model = TheoreticalCostModel(th, NormalProbabilityModel(8.0, 3.0))
        s = shifted_binary_tree(40)
        assert model.normalized_cost(s) == pytest.approx(
            model.cost_per_point(s) / s.coverage
        )

    def test_prediction_tracks_measured_cost(self, poisson_setup):
        # The whole point of the theoretical model (paper Fig. 10):
        # predicted operations per point should track the real run.
        data, th = poisson_setup
        model = TheoreticalCostModel(
            th, EmpiricalProbabilityModel(data[:5000])
        )
        for structure in (
            shifted_binary_tree(40),
            single_level_structure(40),
            SATStructure.from_pairs([(4, 2), (12, 4), (48, 8)]),
        ):
            predicted = model.cost_per_point(structure)
            detector = ChunkedDetector(structure, th)
            detector.detect(data)
            actual = detector.counters.total_operations / data.size
            assert predicted == pytest.approx(actual, rel=0.25), structure

    def test_structural_level_costs_update_only(self):
        th = FixedThresholds({2: 100.0})
        model = TheoreticalCostModel(th, NormalProbabilityModel(1.0, 1.0))
        # Level (8, 5) on top of (4, 1): empty responsibility range.
        from repro.core.structure import Level

        term = model.level_term(Level(4, 1), Level(8, 5))
        assert term == pytest.approx(1.0 / 5.0)

    def test_term_cache(self, poisson_setup):
        _, th = poisson_setup
        model = TheoreticalCostModel(th, NormalProbabilityModel(8.0, 3.0))
        from repro.core.structure import Level

        a = model.level_term(Level(4, 2), Level(12, 4))
        assert model.level_term(Level(4, 2), Level(12, 4)) == a
        assert len(model._term_cache) == 1


class TestEmpiricalCostModel:
    def test_measures_actual_operations(self, poisson_setup):
        data, th = poisson_setup
        train = data[:5000]
        model = EmpiricalCostModel(train, th)
        s = shifted_binary_tree(40)
        detector = ChunkedDetector(s, th)
        detector.detect(train)
        want = detector.counters.total_operations / train.size
        assert model.cost_per_point(s) == pytest.approx(want)

    def test_caches_by_structure(self, poisson_setup):
        data, th = poisson_setup
        model = EmpiricalCostModel(data[:2000], th)
        s = shifted_binary_tree(40)
        first = model.cost_per_point(s)
        assert model.cost_per_point(s) == first
        assert len(model._cache) == 1

    def test_partial_structure_restricted_grid(self, poisson_setup):
        data, th = poisson_setup
        model = EmpiricalCostModel(data[:2000], th)
        # Coverage 9 < max window 40: cost measured on sizes <= 9 only.
        partial = SATStructure.from_pairs([(4, 2), (12, 4)])
        cost = model.cost_per_point_partial(partial)
        assert cost > 0

    def test_partial_structure_no_coverable_sizes(self, poisson_setup):
        data, th = poisson_setup
        model = EmpiricalCostModel(data[:2000], th)
        tiny = SATStructure.from_pairs([(2, 2)])  # coverage 1; min size 1?
        # all_sizes(40) includes 1, so the restricted grid is non-empty;
        # use a threshold set without size 1 to hit the no-sizes path.
        th2 = FixedThresholds({10: 1e9, 40: 1e9})
        model2 = EmpiricalCostModel(data[:2000], th2)
        cost = model2.cost_per_point_partial(tiny)
        assert cost == pytest.approx(
            tiny.nodes_per_cycle() / tiny.top.shift
        )

    def test_time_metric(self, poisson_setup):
        data, th = poisson_setup
        model = EmpiricalCostModel(data[:2000], th, metric="time")
        assert model.cost_per_point(shifted_binary_tree(40)) > 0

    def test_invalid_metric(self, poisson_setup):
        data, th = poisson_setup
        with pytest.raises(ValueError):
            EmpiricalCostModel(data, th, metric="joules")

    def test_level_term_not_supported(self, poisson_setup):
        data, th = poisson_setup
        model = EmpiricalCostModel(data[:2000], th)
        from repro.core.structure import Level

        with pytest.raises(NotImplementedError):
            model.level_term(Level(1, 1), Level(2, 1))
        with pytest.raises(NotImplementedError):
            model.base_term()
