"""Unit tests for the watermark ingestion layer (repro.ingest).

Covers the ingestor's watermark/sealing semantics, the three late-record
policies, post-finish corrections with burst retraction, the exact
amendment ledger, the timestamped CSV source's validation, the
multi-stream wrapper, and the CLI plumbing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregates import SUM
from repro.core.chunked import ChunkedDetector
from repro.core.events import BurstSet
from repro.core.multi import MultiStreamDetector
from repro.core.naive import naive_detect
from repro.core.structure import SATStructure
from repro.core.thresholds import FixedThresholds
from repro.ingest import (
    BurstAmended,
    BurstRetracted,
    LateRecordError,
    MultiStreamIngestor,
    StreamIngestor,
    TimestampedRecord,
)
from repro.streams.source import TimestampedCSVSource

STRUCTURE = SATStructure.from_pairs([(2, 1), (4, 2), (8, 4)])
THRESHOLDS = FixedThresholds({2: 9.0, 4: 14.0})


def make_ingestor(**kwargs):
    detector = ChunkedDetector(STRUCTURE, THRESHOLDS, SUM)
    ingestor = StreamIngestor(detector, THRESHOLDS, SUM, **kwargs)
    return ingestor, detector


def naive_reference(series) -> BurstSet:
    return naive_detect(
        np.asarray(series, dtype=np.float64), THRESHOLDS, SUM
    )


def assert_bursts_equal(got: BurstSet, want: BurstSet) -> None:
    assert got.keys() == want.keys()
    by_key = {b.key(): b.value for b in want}
    for b in got:
        assert b.value == by_key[b.key()]


# -- watermark and sealing ---------------------------------------------


def test_in_order_push_matches_direct_detection():
    values = [1.0, 5.0, 6.0, 2.0, 8.0, 7.0, 0.5, 3.0]
    ingestor, _ = make_ingestor()
    for t, v in enumerate(values):
        ingestor.push(t, v)
    ingestor.finish()
    assert list(ingestor.sealed_series()) == values
    assert_bursts_equal(ingestor.final_bursts(), naive_reference(values))
    ledger = ingestor.ledger
    assert ledger.records == len(values)
    assert ledger.records_sealed == len(values)
    assert ledger.bins_sealed == len(values)


def test_watermark_trails_by_max_lateness():
    ingestor, _ = make_ingestor(max_lateness=3)
    ingestor.push(10, 1.0)
    assert ingestor.watermark == 7
    ingestor.push(8, 1.0)  # within lateness: buffered, not late
    assert ingestor.buffered_records == 2
    ingestor.push(20, 1.0)
    assert ingestor.watermark == 17


def test_gaps_seal_as_identity_bins():
    ingestor, _ = make_ingestor()
    ingestor.push(0, 2.0)
    ingestor.push(4, 3.0)  # bins 1..3 never got records
    ingestor.finish()
    assert list(ingestor.sealed_series()) == [2.0, 0.0, 0.0, 0.0, 3.0]


def test_punctuation_seals_and_defines_lateness():
    ingestor, _ = make_ingestor()
    ingestor.punctuate(5)
    assert ingestor.watermark == 5
    assert ingestor.ledger.bins_sealed == 5
    ingestor.punctuate(3)  # backwards: no-op
    assert ingestor.watermark == 5
    with pytest.raises(LateRecordError):
        ingestor.push(4, 1.0)


def test_duplicate_timestamps_combine_and_count():
    ingestor, _ = make_ingestor()
    ingestor.push(0, 1.0)
    ingestor.push(0, 2.5)
    ingestor.finish()
    assert list(ingestor.sealed_series()) == [3.5]
    assert ingestor.ledger.duplicates_merged == 1
    assert ingestor.ledger.records == 2
    assert ingestor.ledger.records_sealed == 2


def test_push_batch_equals_single_pushes():
    rng = np.random.default_rng(0)
    ts = rng.integers(0, 40, 60)
    vals = np.round(rng.uniform(0, 5, 60) * 1024) / 1024
    one, _ = make_ingestor(max_lateness=40)
    for t, v in zip(ts.tolist(), vals.tolist()):
        one.push(t, v)
    one.finish()
    batched, _ = make_ingestor(max_lateness=40)
    batched.push_batch(ts, vals)
    batched.finish()
    assert list(one.sealed_series()) == list(batched.sealed_series())
    assert_bursts_equal(batched.final_bursts(), one.final_bursts())
    assert one.ledger.as_dict() == batched.ledger.as_dict()


def test_push_after_finish_refused():
    ingestor, _ = make_ingestor()
    ingestor.push(0, 1.0)
    ingestor.finish()
    with pytest.raises(RuntimeError, match="finished"):
        ingestor.push(1, 1.0)


# -- late-record policies ----------------------------------------------


def test_raise_policy_names_frontier_and_remedy():
    ingestor, _ = make_ingestor()
    ingestor.push(10, 1.0)
    with pytest.raises(LateRecordError, match=r"frontier 10.*late-policy"):
        ingestor.push(3, 1.0)


def test_drop_policy_counts_but_ignores():
    ingestor, _ = make_ingestor(late_policy="drop")
    ingestor.push(10, 1.0)
    ingestor.push(3, 99.0)
    ingestor.finish()
    assert ingestor.sealed_series()[3] == 0.0
    ledger = ingestor.ledger
    assert ledger.late_dropped == 1
    assert ledger.records == 2
    assert ledger.records_sealed == 1


def test_amend_policy_revises_history_to_naive_truth():
    ingestor, _ = make_ingestor(late_policy="amend")
    values = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]
    for t, v in enumerate(values):
        ingestor.push(t, v)
    ingestor.push(20, 1.0)  # frontier far past the revision site
    ingestor.push(2, 10.0)  # late: combines into bin 2
    ingestor.finish()
    effective = ingestor.sealed_series()
    assert effective[2] == 11.0
    assert_bursts_equal(ingestor.final_bursts(), naive_reference(effective))
    ledger = ingestor.ledger
    assert ledger.late_amended == 1
    assert ledger.windows_reevaluated > 0
    # The late spike pushed sealed windows over threshold: discovered
    # late, so their events carry old_value None.
    assert ledger.amendments
    assert all(e.old_value is None for e in ledger.amendments)


def test_amendment_ledger_identity():
    ingestor, _ = make_ingestor(late_policy="drop", max_lateness=2)
    rng = np.random.default_rng(1)
    for t in rng.integers(0, 30, 50).tolist():
        ingestor.push(t, 1.0)
    ledger = ingestor.ledger
    assert ledger.records == 50
    assert (
        ledger.records
        == ledger.records_sealed
        + ledger.late_dropped
        + ledger.late_amended
        + ingestor.buffered_records
    )


# -- corrections and retraction ----------------------------------------


def test_correct_retracts_bursts_exactly():
    ingestor, _ = make_ingestor()
    values = [1.0, 8.0, 8.0, 1.0, 1.0, 1.0, 1.0, 1.0]  # bins 1-2 burst
    for t, v in enumerate(values):
        ingestor.push(t, v)
    ingestor.finish()
    assert (2, 2) in ingestor.final_bursts().keys()
    ingestor.correct(2, 0.5)  # a recanted reading: rewrite, not combine
    corrected = ingestor.sealed_series()
    assert corrected[2] == 0.5
    assert_bursts_equal(ingestor.final_bursts(), naive_reference(corrected))
    ledger = ingestor.ledger
    assert ledger.corrections == 1
    assert any(
        e == BurstRetracted(2, 2, 16.0, 8.5) for e in ledger.retractions
    )


def test_correct_refuses_unsealed_bins():
    ingestor, _ = make_ingestor(max_lateness=5)
    ingestor.push(10, 1.0)  # frontier 5; bins 5..10 unsealed
    with pytest.raises(ValueError, match="not sealed"):
        ingestor.correct(7, 2.0)


def test_amend_events_are_ordered_and_validated():
    a = BurstAmended(5, 2, 3.0, 4.0)
    assert a.start == 4
    r = BurstRetracted(5, 2, 16.0, 1.0)
    assert r.start == 4
    with pytest.raises(ValueError):
        BurstAmended(5, 0, None, 1.0)
    assert BurstAmended(4, 2, None, 1.0) < a  # order=True, by end first


def test_timestamped_record_ordering():
    assert TimestampedRecord(1, 5.0) < TimestampedRecord(2, 0.0)


# -- input validation --------------------------------------------------


@pytest.mark.parametrize(
    "timestamp, value",
    [(-1, 1.0), (1.5, 1.0), (0, -1.0), (0, float("nan")), (0, float("inf"))],
)
def test_push_rejects_bad_records(timestamp, value):
    ingestor, _ = make_ingestor()
    with pytest.raises(ValueError):
        ingestor.push(timestamp, value)


def test_push_batch_rejects_bad_arrays():
    ingestor, _ = make_ingestor()
    with pytest.raises(ValueError, match="push_batch"):
        ingestor.push_batch(
            np.array([0, 1]), np.array([1.0, float("nan")])
        )


# -- timestamped CSV source --------------------------------------------


def test_timestamped_source_parses_and_batches(tmp_path):
    path = tmp_path / "feed.csv"
    path.write_text("# comment\n3,1.5\n\n0,2.0\n3,0.25\n")
    source = TimestampedCSVSource(path)
    assert list(source.records()) == [(3, 1.5), (0, 2.0), (3, 0.25)]
    [(ts, vals)] = list(source.batches(16))
    assert ts.tolist() == [3, 0, 3]
    assert vals.tolist() == [1.5, 2.0, 0.25]


@pytest.mark.parametrize(
    "row",
    ["1.5,2.0", "-3,2.0", "3,-2.0", "3,nan", "3,inf", "3", "3,2,1", "x,2"],
)
def test_timestamped_source_rejects_with_file_and_line(tmp_path, row):
    path = tmp_path / "feed.csv"
    path.write_text(f"0,1.0\n{row}\n")
    with pytest.raises(ValueError, match=rf"{path.name}:2: "):
        list(TimestampedCSVSource(path).records())


def test_timestamped_source_skip_bad_records(tmp_path):
    path = tmp_path / "feed.csv"
    path.write_text("0,1.0\nbad,row\n2,3.0\n")
    source = TimestampedCSVSource(path, skip_bad_records=True)
    assert list(source.records()) == [(0, 1.0), (2, 3.0)]
    assert source.skipped == 1


# -- multi-stream ------------------------------------------------------


def test_multi_stream_ingestor_matches_single_runs():
    rng = np.random.default_rng(7)
    streams = {
        name: np.round(rng.uniform(0, 6, 24) * 1024) / 1024
        for name in ("a", "b")
    }
    fleet = MultiStreamDetector.shared(
        list(streams), STRUCTURE, THRESHOLDS, aggregate=SUM
    )
    multi = MultiStreamIngestor(fleet, THRESHOLDS, SUM, max_lateness=4)
    for name, series in streams.items():
        # Adjacent-pair swaps: displacement 1, within max_lateness=4.
        order = [t ^ 1 for t in range(24)]
        for t in order:
            multi.push(name, t, float(series[t]))
    multi.finish()
    final = multi.final_bursts()
    for name, series in streams.items():
        assert_bursts_equal(final[name], naive_reference(series))
    merged = multi.ledger()
    assert merged.records == 48
    assert merged.records_sealed == 48


def test_multi_stream_punctuate_broadcasts():
    fleet = MultiStreamDetector.shared(
        ["a", "b"], STRUCTURE, THRESHOLDS, aggregate=SUM
    )
    multi = MultiStreamIngestor(fleet, THRESHOLDS, SUM)
    multi.punctuate(4)
    for name in ("a", "b"):
        assert multi.ingestor(name).watermark == 4


# -- CLI plumbing ------------------------------------------------------


def test_cli_timestamped_detect_matches_plain(tmp_path, capsys):
    from repro.__main__ import main
    from repro.io import DetectorSpec, save_spec

    spec = DetectorSpec(STRUCTURE, THRESHOLDS)
    spec_path = tmp_path / "spec.json"
    save_spec(spec, spec_path)
    rng = np.random.default_rng(11)
    series = np.round(rng.uniform(0, 6, 40) * 1024) / 1024
    plain = tmp_path / "plain.csv"
    plain.write_text("\n".join(str(v) for v in series) + "\n")
    feed = tmp_path / "feed.csv"
    order = rng.permutation(40).tolist()
    feed.write_text(
        "".join(f"{t},{series[t]}\n" for t in order)
    )
    out_plain = tmp_path / "a.csv"
    out_feed = tmp_path / "b.csv"
    assert main(
        ["detect", str(spec_path), str(plain), "-o", str(out_plain),
         "--workers", "serial"]
    ) == 0
    assert main(
        ["detect", str(spec_path), str(feed), "-o", str(out_feed),
         "--timestamped", "--max-lateness", "40", "--workers", "serial"]
    ) == 0
    assert out_plain.read_text() == out_feed.read_text()
    assert "# ingest: records=40" in capsys.readouterr().err


def test_cli_late_policy_raise_fails_actionably(tmp_path):
    from repro.__main__ import main
    from repro.io import DetectorSpec, save_spec

    spec_path = tmp_path / "spec.json"
    save_spec(DetectorSpec(STRUCTURE, THRESHOLDS), spec_path)
    feed = tmp_path / "feed.csv"
    feed.write_text("10,1.0\n")
    punct = tmp_path / "feed2.csv"
    # A single batch can never be late against itself; lateness via
    # push_batch is exercised in the unit tests above.  Here just check
    # the flag parses and an in-order feed passes under raise.
    punct.write_text("0,1.0\n1,2.0\n")
    assert main(
        ["detect", str(spec_path), str(punct), "-o",
         str(tmp_path / "out.csv"), "--timestamped", "--workers", "serial"]
    ) == 0


def test_cli_amend_requires_serial_fleet():
    import argparse

    from repro.__main__ import _make_ingestor

    class FakeFleet:
        num_workers = 2

    args = argparse.Namespace(
        late_policy="amend", max_lateness=0, workers=2
    )
    with pytest.raises(SystemExit, match="serial"):
        _make_ingestor(args, FakeFleet(), None)
