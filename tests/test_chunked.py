"""Tests that the vectorized detector is indistinguishable from the reference."""

import numpy as np
import pytest

from repro.core.aggregates import MAX
from repro.core.chunked import ChunkedDetector
from repro.core.detector import StreamingDetector
from repro.core.sbt import shifted_binary_tree
from repro.core.structure import SATStructure, single_level_structure
from repro.core.thresholds import FixedThresholds, NormalThresholds, all_sizes


def counters_dict(detector):
    c = detector.counters
    return {
        "updates": c.updates.tolist(),
        "filter": c.filter_comparisons.tolist(),
        "alarms": c.alarms.tolist(),
        "search": c.search_cells.tolist(),
        "bursts": c.bursts,
    }


class TestEquivalence:
    @pytest.mark.parametrize("chunk_size", [1, 3, 64, 250, 10_000])
    def test_identical_to_streaming_all_chunk_sizes(self, chunk_size):
        rng = np.random.default_rng(3)
        data = rng.poisson(6.0, 700).astype(float)
        th = NormalThresholds.from_data(data[:300], 2e-3, all_sizes(24))
        structure = shifted_binary_tree(24)
        ref = StreamingDetector(structure, th)
        want = ref.detect(data)
        chk = ChunkedDetector(structure, th)
        got = chk.detect(data, chunk_size=chunk_size)
        assert got == want
        assert counters_dict(chk) == counters_dict(ref)

    @pytest.mark.parametrize(
        "pairs",
        [
            [(2, 1), (4, 2), (8, 4), (16, 8), (32, 16)],
            [(30, 1)],
            [(5, 2), (12, 4), (40, 16)],
            [(3, 3), (9, 3), (33, 9)],
        ],
    )
    def test_identical_across_structures(self, pairs):
        rng = np.random.default_rng(4)
        data = rng.exponential(5.0, 900)
        structure = SATStructure.from_pairs(pairs)
        maxw = min(structure.coverage, 25)
        th = NormalThresholds.from_data(data[:300], 1e-3, all_sizes(maxw))
        ref = StreamingDetector(structure, th)
        want = ref.detect(data)
        chk = ChunkedDetector(structure, th)
        got = chk.detect(data, chunk_size=123)
        assert got == want
        assert counters_dict(chk) == counters_dict(ref)

    def test_identical_with_max_aggregate(self):
        rng = np.random.default_rng(5)
        data = rng.uniform(0, 100, 600)
        th = FixedThresholds({w: 96.0 + 0.2 * w for w in range(1, 15)})
        structure = shifted_binary_tree(14)
        want = StreamingDetector(structure, th, MAX).detect(data)
        got = ChunkedDetector(structure, th, MAX).detect(data, chunk_size=97)
        assert got == want

    def test_identical_on_burst_heavy_input(self):
        # Alarm probability ~1 everywhere: the degenerate-filter path.
        data = np.full(500, 10.0)
        th = FixedThresholds({w: 5.0 * w for w in range(1, 20)})
        structure = single_level_structure(19)
        want = StreamingDetector(structure, th).detect(data)
        got = ChunkedDetector(structure, th).detect(data, chunk_size=64)
        assert got == want
        assert len(got) > 0


class TestInterface:
    def test_process_after_finish_raises(self):
        th = FixedThresholds({2: 1.0})
        d = ChunkedDetector(shifted_binary_tree(2), th)
        d.detect(np.ones(4))
        with pytest.raises(RuntimeError):
            d.process(np.ones(2))
        with pytest.raises(RuntimeError):
            d.finish()

    def test_bad_chunk_size(self):
        th = FixedThresholds({2: 1.0})
        d = ChunkedDetector(shifted_binary_tree(2), th)
        with pytest.raises(ValueError):
            d.detect(np.ones(4), chunk_size=0)

    def test_empty_stream(self):
        th = FixedThresholds({2: 1.0})
        d = ChunkedDetector(shifted_binary_tree(2), th)
        assert len(d.detect(np.empty(0))) == 0

    def test_structure_must_cover(self):
        th = FixedThresholds({100: 1.0})
        with pytest.raises(ValueError, match="coverage"):
            ChunkedDetector(shifted_binary_tree(16), th)

    def test_length(self):
        th = FixedThresholds({2: 1e9})
        d = ChunkedDetector(shifted_binary_tree(2), th)
        d.process(np.zeros(7))
        assert d.length == 7


class TestScale:
    def test_moderate_stream_fast_path(self):
        # Exercise multiple chunks with realistic thresholds.
        rng = np.random.default_rng(6)
        data = rng.poisson(10.0, 50_000).astype(float)
        th = NormalThresholds.from_data(data[:5000], 1e-5, all_sizes(64))
        d = ChunkedDetector(shifted_binary_tree(64), th)
        bursts = d.detect(data, chunk_size=8192)
        # Deterministic given the seed; sanity-check the counters add up.
        assert d.counters.total_updates > data.size
        assert d.counters.total_operations == (
            d.counters.total_updates
            + d.counters.total_filter_comparisons
            + d.counters.total_search_cells
        )
        assert d.counters.bursts == len(bursts)
