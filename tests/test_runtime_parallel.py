"""Seeded equivalence tests: parallel runtime vs serial multi-stream.

The parallel runtime must be a *perfect* stand-in for the serial
manager: identical bursts (values included), identical per-stream and
merged operation counts, on shared- and per-stream-trained portfolios,
for any worker count.  These tests pin that contract, plus the failure
modes: worker exceptions propagate with the remote traceback, the pool
shuts down cleanly afterwards, and shared-memory segments never leak.
"""

import multiprocessing as mp
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.aggregates import MAX
from repro.core.multi import MultiStreamDetector
from repro.core.opcount import OpCounters
from repro.core.sbt import shifted_binary_tree
from repro.core.search import SearchParams
from repro.core.thresholds import NormalThresholds, all_sizes
from repro.runtime import (
    ParallelMultiStreamDetector,
    SharedChunkRing,
    WorkerError,
    resolve_workers,
)

FAST = SearchParams(
    max_same_size_states=64, max_final_states=400, max_expansions=1500
)


@pytest.fixture
def streams(rng):
    # Ragged lengths on purpose: stream tails hit finish() differently.
    return {
        "a": rng.poisson(5.0, 3000).astype(float),
        "b": rng.poisson(9.0, 2500).astype(float),
        "c": rng.exponential(4.0, 3210),
        "d": rng.poisson(2.0, 700).astype(float),
        "e": rng.exponential(9.0, 1501),
    }


@pytest.fixture
def shared_setup(streams, rng):
    train = rng.poisson(7.0, 2000).astype(float)
    thresholds = NormalThresholds.from_data(train, 1e-3, all_sizes(16))
    return shifted_binary_tree(16), thresholds


def assert_counters_equal(a, b):
    assert np.array_equal(a.updates, b.updates)
    assert np.array_equal(a.filter_comparisons, b.filter_comparisons)
    assert np.array_equal(a.alarms, b.alarms)
    assert np.array_equal(a.search_cells, b.search_cells)
    assert a.bursts == b.bursts


class TestSharedEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_identical_results_and_counts(
        self, streams, shared_setup, workers
    ):
        structure, thresholds = shared_setup
        serial = MultiStreamDetector.shared(streams, structure, thresholds)
        expected = serial.detect(streams, chunk_size=600)

        fleet = ParallelMultiStreamDetector.shared(
            streams, structure, thresholds, workers=workers
        )
        assert fleet.num_workers == workers
        got = fleet.detect(streams, chunk_size=600)

        for name in streams:
            # Byte-identical: same bursts, same order, same values.
            assert tuple(got[name]) == tuple(expected[name]), name
            assert_counters_equal(
                fleet.counters(name), serial.detector(name).counters
            )
        assert fleet.total_operations() == serial.total_operations()
        assert_counters_equal(
            fleet.merged_counters(), serial.merged_counters()
        )

    def test_streaming_interface_ragged_rounds(self, shared_setup, rng):
        structure, thresholds = shared_setup
        serial = MultiStreamDetector.shared(
            ["x", "y"], structure, thresholds
        )
        fleet = ParallelMultiStreamDetector.shared(
            ["x", "y"], structure, thresholds, workers=2
        )
        x1, x2 = rng.poisson(5.0, 40).astype(float), rng.poisson(
            5.0, 25
        ).astype(float)
        y1 = rng.poisson(5.0, 33).astype(float)
        assert fleet.process({"x": x1}) == serial.process({"x": x1})
        assert fleet.process({"x": x2, "y": y1}) == serial.process(
            {"x": x2, "y": y1}
        )
        assert fleet.finish() == serial.finish()

    def test_names_sorted_and_unknown_rejected(self, streams, shared_setup):
        structure, thresholds = shared_setup
        fleet = ParallelMultiStreamDetector.shared(
            streams, structure, thresholds, workers=2
        )
        with fleet:
            assert fleet.names == tuple(sorted(streams))
            with pytest.raises(KeyError, match="unknown streams"):
                fleet.process({"zzz": np.ones(4)})
            with pytest.raises(KeyError):
                fleet.detect({"zzz": np.ones(4)})

    def test_finish_twice_raises(self, streams, shared_setup):
        structure, thresholds = shared_setup
        fleet = ParallelMultiStreamDetector.shared(
            streams, structure, thresholds, workers=2
        )
        fleet.finish()
        with pytest.raises(RuntimeError):
            fleet.finish()
        with pytest.raises(RuntimeError):
            fleet.process({"a": np.ones(2)})


class TestPerStreamEquivalence:
    def test_training_and_detection_identical(self, streams):
        training = {name: s[:1200] for name, s in streams.items()}
        serial = MultiStreamDetector.per_stream(
            training, 1e-3, all_sizes(16), search_params=FAST
        )
        expected = serial.detect(streams)

        fleet = ParallelMultiStreamDetector.per_stream(
            training, 1e-3, all_sizes(16), FAST, workers=2
        )
        got = fleet.detect(streams)
        for name in streams:
            assert fleet.structure(name) == serial.detector(name).structure
            assert tuple(got[name]) == tuple(expected[name]), name
            assert_counters_equal(
                fleet.counters(name), serial.detector(name).counters
            )
        assert_counters_equal(
            fleet.merged_counters(), serial.merged_counters()
        )


class TestAggregatePlumbing:
    """Non-SUM aggregates must survive every backend, incl. the serial
    fallback (which once silently rebuilt detectors with SUM)."""

    def test_shared_max_identical_across_backends(
        self, streams, shared_setup
    ):
        structure, thresholds = shared_setup
        reference = MultiStreamDetector.shared(
            streams, structure, thresholds, aggregate=MAX
        )
        expected = reference.detect(streams, chunk_size=600)
        pooled = ParallelMultiStreamDetector.shared(
            streams, structure, thresholds, workers=2, aggregate=MAX
        )
        fallback = ParallelMultiStreamDetector.shared(
            streams, structure, thresholds, workers="serial", aggregate=MAX
        )
        got_pool = pooled.detect(streams, chunk_size=600)
        got_fallback = fallback.detect(streams, chunk_size=600)
        for name in streams:
            assert tuple(got_pool[name]) == tuple(expected[name]), name
            assert tuple(got_fallback[name]) == tuple(expected[name]), name
        assert_counters_equal(
            pooled.merged_counters(), reference.merged_counters()
        )
        assert_counters_equal(
            fallback.merged_counters(), reference.merged_counters()
        )
        # Sanity: MAX genuinely differs from SUM on this workload, so
        # the equalities above would catch a dropped aggregate.
        sum_results = MultiStreamDetector.shared(
            streams, structure, thresholds
        ).detect(streams, chunk_size=600)
        assert any(
            tuple(sum_results[n]) != tuple(expected[n]) for n in streams
        )

    def test_per_stream_max_backends_agree(self, streams):
        training = {name: s[:1200] for name, s in streams.items()}
        pooled = ParallelMultiStreamDetector.per_stream(
            training, 1e-3, all_sizes(16), FAST, workers=2, aggregate=MAX
        )
        fallback = ParallelMultiStreamDetector.per_stream(
            training,
            1e-3,
            all_sizes(16),
            FAST,
            workers="serial",
            aggregate=MAX,
        )
        got_pool = pooled.detect(streams)
        got_fallback = fallback.detect(streams)
        for name in streams:
            assert tuple(got_pool[name]) == tuple(got_fallback[name]), name
        assert_counters_equal(
            pooled.merged_counters(), fallback.merged_counters()
        )

    def test_refine_filter_off_matches_serial(self, streams, shared_setup):
        structure, thresholds = shared_setup
        reference = MultiStreamDetector.shared(
            streams, structure, thresholds, refine_filter=False
        )
        fleet = ParallelMultiStreamDetector.shared(
            streams, structure, thresholds, workers=2, refine_filter=False
        )
        expected = reference.detect(streams, chunk_size=600)
        got = fleet.detect(streams, chunk_size=600)
        for name in streams:
            assert tuple(got[name]) == tuple(expected[name]), name
        # The ablation switch changes filter work, so counters prove it
        # actually reached the workers.
        assert_counters_equal(
            fleet.merged_counters(), reference.merged_counters()
        )


class TestInflightBound:
    def test_many_streams_with_tiny_window(
        self, shared_setup, rng, monkeypatch
    ):
        # Force the sliding window to engage many times over: with the
        # bound at 2 and 25 streams on 2 workers, setup must interleave
        # sends and acks or it would not terminate correctly.
        import repro.runtime.pool as pool_mod

        monkeypatch.setattr(pool_mod, "DEFAULT_MAX_INFLIGHT", 2)
        structure, thresholds = shared_setup
        streams = {
            f"s{i:02d}": rng.poisson(5.0, 120).astype(float)
            for i in range(25)
        }
        serial = MultiStreamDetector.shared(streams, structure, thresholds)
        fleet = ParallelMultiStreamDetector.shared(
            streams, structure, thresholds, workers=2
        )
        assert fleet.detect(streams) == serial.detect(streams)

    def test_per_stream_training_with_tiny_window(self, rng, monkeypatch):
        import repro.runtime.pool as pool_mod

        monkeypatch.setattr(pool_mod, "DEFAULT_MAX_INFLIGHT", 1)
        training = {
            f"s{i}": rng.poisson(6.0, 300).astype(float) for i in range(7)
        }
        serial = MultiStreamDetector.per_stream(
            training, 1e-3, all_sizes(8), search_params=FAST
        )
        fleet = ParallelMultiStreamDetector.per_stream(
            training, 1e-3, all_sizes(8), FAST, workers=2
        )
        data = {name: rng.poisson(6.0, 500).astype(float) for name in training}
        assert fleet.detect(data) == serial.detect(data)


class TestBackendSelection:
    def test_serial_fallback_is_serial(self, streams, shared_setup):
        structure, thresholds = shared_setup
        fleet = ParallelMultiStreamDetector.shared(
            streams, structure, thresholds, workers="serial"
        )
        assert fleet.num_workers == 0
        serial = MultiStreamDetector.shared(streams, structure, thresholds)
        assert fleet.detect(streams) == serial.detect(streams)

    def test_resolve_workers(self):
        assert resolve_workers("serial", 8) == 0
        assert resolve_workers(0, 8) == 0
        assert resolve_workers(3, 8) == 3
        assert resolve_workers(8, 3) == 3  # capped at stream count
        auto = resolve_workers("auto", 16)
        assert auto == 0 or auto >= 2
        with pytest.raises(ValueError):
            resolve_workers(-1, 4)
        with pytest.raises(ValueError):
            resolve_workers("many", 4)

    def test_empty_fleet_rejected(self, shared_setup):
        structure, thresholds = shared_setup
        with pytest.raises(ValueError):
            ParallelMultiStreamDetector.shared([], structure, thresholds)

    def test_duplicate_names_rejected(self, shared_setup):
        structure, thresholds = shared_setup
        with pytest.raises(ValueError, match="unique"):
            ParallelMultiStreamDetector.shared(
                ["a", "a"], structure, thresholds, workers=2
            )


def _exit_without_cleanup(conn, worker_id):
    """Stand-in worker that dies instantly, like a segfault or OOM kill."""
    os._exit(1)


def _shm_segments() -> set:
    return set(os.listdir("/dev/shm"))


needs_dev_shm = pytest.mark.skipif(
    not Path("/dev/shm").is_dir(), reason="POSIX shared memory not mounted"
)
needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="monkeypatched worker target needs fork inheritance",
)


class TestWorkerDeath:
    """A worker dying mid-flight must never strand /dev/shm segments.

    The parent owns every segment, so its exception path — not the dead
    worker — is what keeps the machine clean.  These tests pin the
    ordering fixed after PR 2: release shared memory *before* (or in a
    ``finally`` around) joining workers, because joins can raise or be
    interrupted while unlink cannot.
    """

    @needs_dev_shm
    def test_killed_worker_frees_all_segments(self, streams, shared_setup):
        structure, thresholds = shared_setup
        before = _shm_segments()
        fleet = ParallelMultiStreamDetector.shared(
            streams, structure, thresholds, workers=2
        )
        # Simulate an external kill (OOM, operator) of one worker.
        victim = fleet._pool._procs[0]
        victim.kill()
        victim.join(timeout=10.0)
        assert not victim.is_alive()
        with pytest.raises(WorkerError, match="worker"):
            fleet.detect(streams, chunk_size=600)
        # The failure shut the fleet down and unlinked every segment.
        assert fleet._closed
        assert _shm_segments() - before == set()

    @needs_dev_shm
    @needs_fork
    def test_worker_dead_at_startup_frees_training_segments(
        self, rng, monkeypatch
    ):
        # per_stream() ships training arrays through the ring while
        # building; a worker that dies before acking any of them must
        # not leak those in-flight segments on the error path.
        import repro.runtime.pool as pool_mod

        monkeypatch.setattr(pool_mod, "worker_main", _exit_without_cleanup)
        before = _shm_segments()
        training = {
            f"s{i}": rng.poisson(6.0, 300).astype(float) for i in range(6)
        }
        with pytest.raises(WorkerError, match="worker"):
            ParallelMultiStreamDetector.per_stream(
                training, 1e-3, all_sizes(8), FAST, workers=2
            )
        assert _shm_segments() - before == set()


class TestFailureModes:
    def test_worker_exception_propagates(self, streams, shared_setup):
        structure, thresholds = shared_setup
        fleet = ParallelMultiStreamDetector.shared(
            streams, structure, thresholds, workers=2
        )
        # Negative values violate the monotonicity contract inside the
        # worker's detector; the remote ValueError must surface here.
        with pytest.raises(WorkerError, match="non-negative"):
            fleet.process({"a": np.array([1.0, -5.0, 2.0])})
        # The pool is shut down; further use fails fast instead of hanging.
        with pytest.raises(RuntimeError):
            fleet.process({"a": np.ones(4)})

    def test_close_is_idempotent(self, streams, shared_setup):
        structure, thresholds = shared_setup
        fleet = ParallelMultiStreamDetector.shared(
            streams, structure, thresholds, workers=2
        )
        fleet.close()
        fleet.close()


class TestChunkRing:
    def test_slots_recycle(self):
        with SharedChunkRing() as ring:
            a = ring.put(np.arange(10.0))
            ring.release(a)
            b = ring.put(np.arange(5.0))
            assert b.slot == a.slot  # reused, not reallocated
            assert ring.num_slots == 1

    def test_roundtrip_values(self):
        from repro.runtime import ChunkReader

        with SharedChunkRing() as ring:
            data = np.linspace(0.0, 1.0, 1000)
            ref = ring.put(data)
            reader = ChunkReader()
            try:
                assert np.array_equal(reader.view(ref), data)
            finally:
                reader.close()

    def test_regrow_evicts_stale_reader_attachments(self):
        from repro.runtime import ChunkReader

        with SharedChunkRing() as ring:
            reader = ChunkReader()
            try:
                small = ring.put(np.arange(10.0))
                old_name = small.name
                reader.view(small)  # cache the attachment
                assert old_name in reader._segments
                ring.release(small)
                # Too big for the free slot: the ring regrows it in
                # place, unlinking the old segment.
                big = ring.put(np.arange(float(1 << 13)))
                assert big.slot == small.slot
                assert old_name in big.retired
                view = reader.view(big)
                # The reader dropped the dead segment, not just any.
                assert old_name not in reader._segments
                assert big.name in reader._segments
                assert np.array_equal(view, np.arange(float(1 << 13)))
            finally:
                reader.close()


def test_merged_counters_pads_levels():
    a, b = OpCounters(2), OpCounters(4)
    a.updates[:] = [1, 2, 3]
    b.updates[:] = [10, 20, 30, 40, 50]
    a.bursts, b.bursts = 3, 4
    merged = OpCounters.merged([a, b])
    assert merged.num_levels == 4
    assert list(merged.updates) == [11, 22, 33, 40, 50]
    assert merged.bursts == 7
    # __iadd__ stays strict about shape.
    with pytest.raises(ValueError):
        a += b
