"""Tests for the differential fuzzing / metamorphic harness itself.

Two kinds of coverage: (a) the harness machinery works — generators
produce valid inputs, the shrinker minimizes, the corpus round-trips,
the CLI exits correctly; (b) the harness has *teeth* — deliberately
injected detector bugs (mutated per-test via monkeypatching, never
committed) are caught by the fuzz loop and shrunk to tiny reproducers.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.chunked import ChunkedDetector
from repro.core import dsr
from repro.testkit import (
    QUANTUM,
    FuzzCase,
    FuzzConfig,
    case_from_dict,
    case_to_dict,
    differential_check,
    fault_plan_check,
    fuzz_once,
    random_case,
    random_fault_plan,
    random_partition,
    random_sat,
    replay_case,
    replay_path,
    run_fuzz,
    run_relations,
    save_reproducer,
    shrink_case,
    worker_sweep_check,
)
from repro.testkit.__main__ import main as cli_main
from repro.testkit.generators import refit_partition


class TestGenerators:
    def test_streams_are_dyadic_and_non_negative(self):
        for index in range(60):
            rng = np.random.default_rng([7, index])
            case = random_case(rng, max_points=256)
            assert case.stream.dtype == np.float64
            assert np.all(case.stream >= 0.0)
            scaled = case.stream / QUANTUM
            assert np.array_equal(scaled, np.round(scaled))

    def test_partitions_cover_the_stream(self):
        rng = np.random.default_rng(3)
        for _ in range(200):
            n = int(rng.integers(0, 400))
            chunks = random_partition(rng, n)
            assert sum(chunks) == n
            assert all(c >= 0 for c in chunks)

    def test_random_sat_is_valid_and_covers(self):
        rng = np.random.default_rng(11)
        for _ in range(100):
            max_window = int(rng.integers(2, 80))
            structure = random_sat(rng, max_window)  # validates on build
            assert structure.covers(max_window)

    def test_specs_cover_their_grids(self):
        for index in range(40):
            rng = np.random.default_rng([13, index])
            case = random_case(rng, max_points=128)
            spec = case.spec
            assert spec.structure.covers(spec.thresholds.max_window)

    def test_refit_partition_clips_and_extends(self):
        assert refit_partition((4, 4, 4), 6) == (4, 2)
        assert refit_partition((2, 2), 7) == (2, 2, 3)
        assert refit_partition((5,), 0) == ()


class TestDifferentialBattery:
    def test_clean_tree_fuzzes_clean(self):
        report = run_fuzz(
            FuzzConfig(
                budget=40, seed=1234, adaptive_every=10, spatial_every=8
            )
        )
        assert report.cases == 40
        assert report.ok, report.summary()

    def test_relations_hold_on_clean_tree(self):
        for index in range(15):
            rng = np.random.default_rng([99, index])
            case = random_case(rng, max_points=200)
            assert run_relations(case, rng) == []

    def test_fuzz_once_reproduces_by_coordinates(self):
        case_a, failures_a = fuzz_once(seed=5, index=17)
        case_b, failures_b = fuzz_once(seed=5, index=17)
        assert np.array_equal(case_a.stream, case_b.stream)
        assert case_a.spec.to_dict() == case_b.spec.to_dict()
        assert not failures_a and not failures_b

    def test_worker_sweep_clean(self):
        rng = np.random.default_rng(42)
        case = random_case(rng, max_points=96)
        assert worker_sweep_check(case, worker_counts=(2,)) == []


class TestFaultSweep:
    def test_random_fault_plan_is_seeded_and_valid(self):
        from repro.runtime.faults import FAULT_KINDS

        a = random_fault_plan(
            np.random.default_rng(5), n_rounds=4, streams=("s0", "s1")
        )
        b = random_fault_plan(
            np.random.default_rng(5), n_rounds=4, streams=("s0", "s1")
        )
        assert str(a) == str(b)  # same seed, same schedule
        assert 1 <= len(a.faults) <= 3
        for f in a.faults:
            assert f.kind in FAULT_KINDS
            assert 0 <= f.round_index < 4
            assert 0 <= f.worker < 2
            if f.kind == "corrupt":
                assert f.stream in ("s0", "s1")

    def test_fault_plan_check_clean(self):
        rng = np.random.default_rng(43)
        case = random_case(rng, max_points=96)
        while case.stream.size < 24:
            case = random_case(rng, max_points=96)
        assert fault_plan_check(case, rng=rng) == []

    def test_fault_plan_check_needs_plan_or_rng(self):
        rng = np.random.default_rng(44)
        case = random_case(rng, max_points=64)
        with pytest.raises(ValueError, match="plan or an rng"):
            fault_plan_check(case)


class TestInjectedBugs:
    """The harness must catch deliberately broken detectors."""

    def test_chunk_boundary_off_by_one_is_caught_and_shrunk(
        self, monkeypatch
    ):
        # Off-by-one: drop bursts whose window ends on a chunk's last
        # point — the classic boundary bug the chunked detector exists
        # to not have.
        original = ChunkedDetector.process

        def buggy(self, chunk):
            chunk = np.asarray(chunk, dtype=np.float64)
            last = self.length + chunk.size - 1
            return [b for b in original(self, chunk) if b.end != last]

        monkeypatch.setattr(ChunkedDetector, "process", buggy)
        report = run_fuzz(
            FuzzConfig(
                budget=200,
                seed=0,
                adaptive_every=0,
                parallel_every=0,
                spatial_every=0,
                stop_after=1,
            )
        )
        assert report.failures, "fuzzer missed the injected off-by-one"
        record = report.failures[0]
        assert record.stream_points <= 64, (
            f"reproducer not minimal: {record.stream_points} points"
        )
        kinds = {m.kind for m in record.mismatches}
        assert kinds & {"differential", "counters"} or kinds

    def test_tie_breaking_bug_in_refinement_is_caught(self, monkeypatch):
        # Exact-threshold ties: `side="left"` excludes sizes whose
        # threshold equals the node value, silently dropping bursts
        # that sit exactly on f(w).  The dyadic tie generator must see it.
        original = dsr.find_triggered

        def buggy(plan, value, counters):
            if plan.monotone:
                cut = int(
                    np.searchsorted(plan.thresholds, value, side="left")
                )
                return plan.sizes[:cut], plan.thresholds[:cut]
            return original(plan, value, counters)

        # The detectors bind `find_triggered` at import time; patch the
        # bound names, not just the defining module.
        import repro.core.chunked as chunked_mod
        import repro.core.detector as detector_mod

        monkeypatch.setattr(dsr, "find_triggered", buggy)
        monkeypatch.setattr(chunked_mod, "find_triggered", buggy)
        monkeypatch.setattr(detector_mod, "find_triggered", buggy)
        report = run_fuzz(
            FuzzConfig(
                budget=300,
                seed=0,
                adaptive_every=0,
                spatial_every=0,
                stop_after=1,
                shrink=False,
            )
        )
        assert report.failures, "fuzzer missed the tie-breaking bug"


class TestShrinker:
    def test_shrinks_to_the_single_relevant_point(self):
        rng = np.random.default_rng(0)
        stream = np.zeros(500, dtype=np.float64)
        stream[311] = 177.0
        case = random_case(rng, max_points=32).with_stream(stream)

        def still_fails(candidate: FuzzCase) -> bool:
            return bool(np.any(candidate.stream >= 177.0))

        shrunk = shrink_case(case, still_fails)
        assert still_fails(shrunk)
        assert shrunk.stream.size == 1
        assert shrunk.stream[0] == 177.0

    def test_shrinker_reduces_spec(self):
        rng = np.random.default_rng(1)
        case = None
        while case is None or case.spec.thresholds.window_sizes.size < 3:
            case = random_case(rng, max_points=64)

        def still_fails(candidate: FuzzCase) -> bool:
            return 1 <= int(candidate.spec.thresholds.window_sizes[0])

        shrunk = shrink_case(case, still_fails)
        assert shrunk.spec.thresholds.window_sizes.size == 1
        assert shrunk.spec.structure.num_levels <= case.spec.structure.num_levels


class TestCorpus:
    def test_case_roundtrip(self):
        rng = np.random.default_rng(21)
        case = random_case(rng, max_points=64)
        payload = case_to_dict(case)
        back = case_from_dict(payload)
        assert np.array_equal(back.stream, case.stream)
        assert back.chunks == case.chunks
        assert back.refine_filter == case.refine_filter
        assert back.spec.to_dict() == case.spec.to_dict()

    def test_save_is_content_addressed_and_replayable(self, tmp_path):
        rng = np.random.default_rng(22)
        case = random_case(rng, max_points=64)
        path_a = save_reproducer(case, (), tmp_path)
        path_b = save_reproducer(case, (), tmp_path)
        assert path_a == path_b  # same content, same file
        assert json.loads(path_a.read_text())["format"] == (
            "repro.testkit.case.v1"
        )
        assert replay_path(path_a) == []

    def test_replay_is_deterministic(self):
        rng = np.random.default_rng(23)
        case = random_case(rng, max_points=64)
        assert replay_case(case) == replay_case(case)

    def test_replay_rejects_unknown_format(self, tmp_path):
        bad = tmp_path / "x.json"
        bad.write_text('{"format": "nope"}')
        with pytest.raises(ValueError, match="unknown corpus format"):
            replay_path(bad)


class TestCLI:
    def test_fuzz_subcommand_exits_zero_on_clean_tree(self, capsys):
        code = cli_main(
            [
                "fuzz",
                "--budget",
                "12",
                "--seed",
                "7",
                "--quiet",
                "--spatial-every",
                "6",
                "--adaptive-every",
                "0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "12 cases" in out

    def test_fuzz_subcommand_exits_nonzero_on_failure(
        self, monkeypatch, tmp_path, capsys
    ):
        original = ChunkedDetector.process

        def buggy(self, chunk):
            chunk = np.asarray(chunk, dtype=np.float64)
            last = self.length + chunk.size - 1
            return [b for b in original(self, chunk) if b.end != last]

        monkeypatch.setattr(ChunkedDetector, "process", buggy)
        code = cli_main(
            [
                "fuzz",
                "--budget",
                "60",
                "--seed",
                "0",
                "--quiet",
                "--stop-after",
                "1",
                "--spatial-every",
                "0",
                "--adaptive-every",
                "0",
                "--corpus-dir",
                str(tmp_path),
            ]
        )
        assert code == 1
        written = list(tmp_path.glob("fuzz-*.json"))
        assert written, "failing case was not persisted"
        capsys.readouterr()

    def test_replay_subcommand(self, tmp_path, capsys):
        rng = np.random.default_rng(31)
        case = random_case(rng, max_points=48)
        save_reproducer(case, (), tmp_path)
        code = cli_main(["replay", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 cases, 0 failing" in out

    def test_replay_empty_directory(self, tmp_path, capsys):
        code = cli_main(["replay", str(tmp_path)])
        assert code == 0
        assert "no corpus files" in capsys.readouterr().out


class TestOracleConsistency:
    """The moved brute-force oracle still matches the vectorized naive."""

    def test_brute_force_matches_naive_reference(self):
        for index in range(10):
            rng = np.random.default_rng([55, index])
            case = random_case(rng, max_points=96)
            assert differential_check(case, ()) == []  # counters no-op
            from repro.testkit import brute_force_bursts, run_backend

            brute = brute_force_bursts(
                case.stream,
                case.spec.thresholds,
                case.spec.aggregate_name,
            )
            naive = run_backend(case, "naive")
            assert naive.keys() == brute
