"""Arrival-order invariance over the committed corpus (tier-1).

For every stream case in ``tests/corpus/`` the full ingestion +
detection pipeline runs under at least eight seeded watermark-consistent
arrival permutations, and each run must be byte-identical to the
in-order oracle: final bursts (ends, sizes, *and* values), per-level
operation-count routing, and the amendment ledger.  The in-order
ingestion run itself must match the plain chunked backend — the
ingestion layer has to be invisible when nothing is late.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.testkit import (
    load_case,
    ooo_shuffle,
    watermark_consistent_arrival,
)
from repro.testkit.corpus import CASE_FORMAT

CORPUS_DIR = Path(__file__).parent / "corpus"
STREAM_CASES = sorted(
    p
    for p in CORPUS_DIR.glob("*.json")
    if json.loads(p.read_text()).get("format") == CASE_FORMAT
)
PERMUTATIONS = 8


def _rng_for(path: Path) -> np.random.Generator:
    seed = int.from_bytes(
        hashlib.sha1(path.name.encode()).digest()[:8], "big"
    )
    return np.random.default_rng(seed)


def test_stream_corpus_is_present():
    assert len(STREAM_CASES) >= 8


@pytest.mark.parametrize(
    "path", STREAM_CASES, ids=[p.stem for p in STREAM_CASES]
)
def test_arrival_order_invariance(path: Path):
    case = load_case(path)
    mismatches = ooo_shuffle(
        case, _rng_for(path), permutations=PERMUTATIONS
    )
    detail = "\n".join(m.format() for m in mismatches)
    assert mismatches == [], f"{path.name} order-dependent:\n{detail}"


# -- the permutation generator itself ----------------------------------


@pytest.mark.parametrize("max_lateness", [0, 1, 3, 10, 100])
def test_permutations_are_watermark_consistent(max_lateness):
    rng = np.random.default_rng(max_lateness)
    for _ in range(20):
        arrival = watermark_consistent_arrival(rng, 50, max_lateness)
        assert sorted(arrival.tolist()) == list(range(50))
        high = -1
        for t in arrival.tolist():
            # Never late: at release time the frontier is
            # high - max_lateness, and t must sit at or above it.
            assert t >= high - max_lateness
            high = max(high, t)


def test_zero_lateness_forces_in_order():
    rng = np.random.default_rng(0)
    arrival = watermark_consistent_arrival(rng, 30, 0)
    assert arrival.tolist() == list(range(30))


def test_large_lateness_actually_shuffles():
    rng = np.random.default_rng(0)
    arrival = watermark_consistent_arrival(rng, 30, 1000)
    assert arrival.tolist() != list(range(30))
