"""Tests of the fused detection kernel layer (:mod:`repro.core.kernel`).

Three groups:

* backend policy — ``auto``/``numba``/``numpy`` resolution, the one-time
  fallback warning, the actionable error when numba is requested but
  missing, and the ``REPRO_DISABLE_NUMBA`` escape hatch;
* scratch management — buffers are reused across same-size chunks
  (object identity, not just equal shapes) and grown geometrically;
* parity — the kernel's pure-Python scan bodies (exactly what numba
  compiles) driven through :class:`ChunkedDetector` must be
  byte-identical to :class:`StreamingDetector` in bursts *and* operation
  counters, and a forced-fallback subprocess must reproduce the same
  corpus digests as the default backend.
"""

from __future__ import annotations

import os
import subprocess
import sys
import types
import warnings
from pathlib import Path

import numpy as np
import pytest

import repro.core.kernel as kernel
from repro.core.aggregates import MAX, SUM, WindowEngine
from repro.core.chunked import ChunkedDetector
from repro.core.detector import StreamingDetector
from repro.core.kernel import (
    KernelScratch,
    grow_capacity,
    numba_available,
    resolve_backend,
)
from repro.testkit import random_case

SRC = Path(__file__).parent.parent / "src"
NATIVE_SRC = SRC / "repro" / "core" / "kernel" / "native.py"
CORPUS = Path(__file__).parent / "corpus"


def _case(seed: int, min_points: int = 200, max_points: int = 600):
    """A testkit case with a reasonably long stream."""
    index = 0
    while True:
        case = random_case(
            np.random.default_rng([seed, index]), max_points=max_points
        )
        if case.stream.size >= min_points:
            return case
        index += 1


def _detector(case, backend: str = "auto") -> ChunkedDetector:
    spec = case.spec
    return ChunkedDetector(
        spec.structure,
        spec.thresholds,
        spec.aggregate,
        refine_filter=case.refine_filter,
        backend=backend,
    )


def _feed(det, case):
    bursts = []
    lo = 0
    for size in case.chunks:
        bursts.extend(det.process(case.stream[lo : lo + size]))
        lo += size
    if lo < case.stream.size:
        bursts.extend(det.process(case.stream[lo:]))
    bursts.extend(det.finish())
    return bursts


def _burst_bytes(bursts):
    return tuple(
        (b.end, b.size, float(b.value).hex()) for b in sorted(bursts)
    )


def _counter_bytes(c):
    return (
        c.updates.tobytes(),
        c.filter_comparisons.tobytes(),
        c.alarms.tobytes(),
        c.search_cells.tobytes(),
        c.bursts,
    )


# ---------------------------------------------------------------------------
# Backend policy
# ---------------------------------------------------------------------------


class TestBackendPolicy:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("cython")
        case = _case(11)
        with pytest.raises(ValueError, match="unknown backend"):
            _detector(case, backend="fast")

    def test_numpy_always_resolves(self):
        assert resolve_backend("numpy") == "numpy"
        det = _detector(_case(12), backend="numpy")
        assert det.resolved_backend == "numpy"
        assert det._native is None

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_numba_missing_is_actionable(self):
        with pytest.raises(RuntimeError, match=r"repro\[speed\]"):
            resolve_backend("numba")
        with pytest.raises(RuntimeError, match=r"repro\[speed\]"):
            _detector(_case(13), backend="numba")

    @pytest.mark.skipif(not numba_available(), reason="numba missing")
    def test_numba_resolves_when_available(self):
        assert resolve_backend("numba") == "numba"
        assert resolve_backend("auto") == "numba"

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_auto_degrades_with_one_time_warning(self, monkeypatch):
        monkeypatch.setattr(kernel, "_warned_fallback", False)
        with pytest.warns(RuntimeWarning, match=r"repro\[speed\]"):
            assert resolve_backend("auto") == "numpy"
        with warnings.catch_warnings():  # second call is silent
            warnings.simplefilter("error")
            assert resolve_backend("auto") == "numpy"

    def test_env_disable_forces_numpy_silently(self, monkeypatch):
        monkeypatch.setenv(kernel.ENV_DISABLE, "1")
        monkeypatch.setattr(kernel, "_warned_fallback", False)
        assert not numba_available()
        with warnings.catch_warnings():  # deliberate, so no warning
            warnings.simplefilter("error")
            assert resolve_backend("auto") == "numpy"
        with pytest.raises(RuntimeError, match=kernel.ENV_DISABLE):
            resolve_backend("numba")

    def test_base_engine_has_no_kernel_state(self):
        with pytest.raises(NotImplementedError, match="backend='numpy'"):
            WindowEngine(4).kernel_state()

    def test_kernel_state_exposes_live_buffers(self):
        eng = SUM.make_engine(8)
        eng.append(np.array([1.0, 2.0, 4.0], dtype=np.float64))
        kind, buf, offset = eng.kernel_state()
        assert kind == "sum" and offset == 0
        assert eng.kernel_state()[1] is buf  # live array, not a copy
        eng = MAX.make_engine(8)
        eng.append(np.array([1.0, 3.0, 2.0], dtype=np.float64))
        kind, buf, offset = eng.kernel_state()
        assert kind == "max" and offset == 0
        assert eng.kernel_state()[1] is buf


# ---------------------------------------------------------------------------
# Scratch management
# ---------------------------------------------------------------------------


class TestScratch:
    def test_grow_capacity_is_geometric(self):
        assert grow_capacity(0) == 1024
        assert grow_capacity(1) == 1024
        assert grow_capacity(1024) == 1024
        assert grow_capacity(1025) == 2048
        assert grow_capacity(5000) == 8192
        for n in (1, 7, 100, 1023, 1024, 1025, 70_000):
            cap = grow_capacity(n)
            assert cap >= max(n, 1024)
            assert cap & (cap - 1) == 0  # a power of two

    def test_same_size_chunks_reuse_the_same_buffers(self):
        case = _case(21, min_points=300)
        det = _detector(case, backend="numpy")
        size = 48
        det.process(case.stream[:size])
        scratch = det._scratch
        assert scratch is not None
        assert scratch.capacity == grow_capacity(size)
        held = (
            scratch.cand_ends,
            scratch.cand_values,
            scratch.update_counts,
            scratch.filter_counts,
        )
        for lo in range(size, min(case.stream.size, 6 * size), size):
            det.process(case.stream[lo : lo + size])
            assert det._scratch is scratch  # object identity, no realloc
        assert (
            scratch.cand_ends,
            scratch.cand_values,
            scratch.update_counts,
            scratch.filter_counts,
        ) == held

    def test_larger_chunk_replaces_scratch_geometrically(self):
        case = _case(22, min_points=300)
        det = _detector(case, backend="numpy")
        det.process(case.stream[:16])
        # Shrink the scratch below the next chunk to force one regrow.
        det._scratch = KernelScratch(det._layout, 16)
        small = det._scratch
        det.process(case.stream[16:116])
        assert det._scratch is not small
        assert det._scratch.capacity == grow_capacity(100) == 1024
        # Smaller follow-up chunks keep the regrown scratch.
        grown = det._scratch
        det.process(case.stream[116:140])
        assert det._scratch is grown


# ---------------------------------------------------------------------------
# Parity: kernel scan bodies vs the streaming reference
# ---------------------------------------------------------------------------


def _load_pure_native() -> types.ModuleType:
    """The native module with ``@njit`` stubbed out to the identity.

    ``scan_sum``/``scan_max`` then run the exact Python bodies numba
    compiles, so this parity suite exercises the native code path — call
    signatures, layout packing, candidate segments, count charging —
    without requiring numba.
    """
    src = NATIVE_SRC.read_text()
    stubbed = src.replace(
        "from numba import njit",
        "njit = lambda **kw: (lambda f: f)",
    )
    assert stubbed != src, "njit import not found in native.py"
    mod = types.ModuleType("repro_kernel_native_pure")
    exec(compile(stubbed, str(NATIVE_SRC), "exec"), mod.__dict__)
    return mod


_PURE_NATIVE = _load_pure_native()


def _native_detector(case) -> ChunkedDetector:
    det = _detector(case, backend="numpy")
    det._native = _PURE_NATIVE
    det._resolved = "numba"
    return det


class TestKernelParity:
    @pytest.mark.parametrize("seed", range(40, 70))
    def test_scan_bodies_match_streaming_detector(self, seed):
        case = _case(seed, min_points=64)
        spec = case.spec
        ref = StreamingDetector(
            spec.structure,
            spec.thresholds,
            spec.aggregate,
            refine_filter=case.refine_filter,
        )
        want = _feed(ref, case)
        got = _feed(_native_detector(case), case)
        assert _burst_bytes(got) == _burst_bytes(want)

    @pytest.mark.parametrize("seed", range(70, 80))
    def test_scan_bodies_match_streaming_counters(self, seed):
        case = _case(seed, min_points=64)
        spec = case.spec
        ref = StreamingDetector(
            spec.structure,
            spec.thresholds,
            spec.aggregate,
            refine_filter=case.refine_filter,
        )
        _feed(ref, case)
        det = _native_detector(case)
        _feed(det, case)
        assert _counter_bytes(det.counters) == _counter_bytes(ref.counters)

    @pytest.mark.skipif(not numba_available(), reason="numba missing")
    @pytest.mark.parametrize("seed", range(80, 90))
    def test_compiled_kernel_matches_numpy_fallback(self, seed):
        case = _case(seed, min_points=64)
        a = _detector(case, backend="numba")
        b = _detector(case, backend="numpy")
        assert _burst_bytes(_feed(a, case)) == _burst_bytes(_feed(b, case))
        assert _counter_bytes(a.counters) == _counter_bytes(b.counters)


# ---------------------------------------------------------------------------
# Forced fallback (REPRO_DISABLE_NUMBA) — subprocess parity on the corpus
# ---------------------------------------------------------------------------


_CORPUS_DIGEST_SCRIPT = """
import hashlib, json, sys
from pathlib import Path
from repro.core.chunked import ChunkedDetector
from repro.testkit import CASE_FORMAT, corpus_paths, load_case

h = hashlib.sha256()
for path in corpus_paths(Path(sys.argv[1])):
    if json.loads(path.read_text()).get("format") != CASE_FORMAT:
        continue  # spatial reproducers have no chunked backend
    case = load_case(path)
    spec = case.spec
    det = ChunkedDetector(
        spec.structure,
        spec.thresholds,
        spec.aggregate,
        refine_filter=case.refine_filter,
        backend="auto",
    )
    h.update(path.name.encode())
    for b in sorted(det.detect(case.stream)):
        h.update(f"{b.end},{b.size},{float(b.value).hex()};".encode())
    c = det.counters
    for arr in (c.updates, c.filter_comparisons, c.alarms, c.search_cells):
        h.update(arr.tobytes())
    h.update(str(c.bursts).encode())
print(h.hexdigest())
"""


def _corpus_digest(disable_numba: bool) -> str:
    env = dict(os.environ, PYTHONPATH=str(SRC))
    env.pop(kernel.ENV_DISABLE, None)
    if disable_numba:
        env[kernel.ENV_DISABLE] = "1"
    proc = subprocess.run(
        [sys.executable, "-W", "ignore", "-c", _CORPUS_DIGEST_SCRIPT,
         str(CORPUS)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


def test_forced_fallback_is_byte_identical_on_seed_corpus():
    """``REPRO_DISABLE_NUMBA=1`` must not change a single corpus byte.

    With numba installed this diffs the compiled kernel against the
    NumPy fallback over the whole seed corpus; without it, it still
    pins the fallback's determinism across processes.
    """
    assert _corpus_digest(True) == _corpus_digest(False)


def test_env_disable_subprocess_resolves_numpy():
    code = (
        "import repro.core.kernel as k;"
        "print(k.resolve_backend('auto'), k.numba_available())"
    )
    env = dict(os.environ, PYTHONPATH=str(SRC))
    env[kernel.ENV_DISABLE] = "1"
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.split() == ["numpy", "False"]


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------


class TestBackendCLI:
    @pytest.fixture
    def trained_spec(self, tmp_path):
        from repro.__main__ import main as cli_main

        rng = np.random.default_rng(5)
        train = rng.poisson(5.0, 1500).astype(float)
        live = rng.poisson(5.0, 2000).astype(float)
        live[900:903] += 40.0
        train_path = tmp_path / "train.csv"
        live_path = tmp_path / "live.csv"
        train_path.write_text("\n".join(f"{x:g}" for x in train) + "\n")
        live_path.write_text("\n".join(f"{x:g}" for x in live) + "\n")
        spec_path = tmp_path / "spec.json"
        assert cli_main(
            ["train", str(train_path), "--max-window", "16",
             "-o", str(spec_path)]
        ) == 0
        return spec_path, live_path

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_detect_backend_numba_missing_exits_actionably(
        self, trained_spec, tmp_path
    ):
        from repro.__main__ import main as cli_main

        spec_path, live_path = trained_spec
        with pytest.raises(SystemExit) as exc:
            cli_main(
                ["detect", str(spec_path), str(live_path),
                 "--backend", "numba",
                 "-o", str(tmp_path / "bursts.csv")]
            )
        assert "repro[speed]" in str(exc.value)

    def test_detect_backend_numpy_runs(self, trained_spec, tmp_path):
        from repro.__main__ import main as cli_main

        spec_path, live_path = trained_spec
        out = tmp_path / "bursts.csv"
        assert cli_main(
            ["detect", str(spec_path), str(live_path),
             "--backend", "numpy", "-o", str(out)]
        ) == 0
        assert out.read_text().startswith("end,size,value")

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_testkit_fuzz_backend_numba_missing_exits(self, capsys):
        from repro.testkit.__main__ import main as tk_main

        assert tk_main(["fuzz", "--budget", "1", "--backend", "numba"]) == 2
        assert "repro[speed]" in capsys.readouterr().err
