"""Unit tests for the reference streaming detector."""

import numpy as np
import pytest

from repro.core.aggregates import MAX
from repro.core.detector import StreamingDetector
from repro.core.naive import naive_detect
from repro.core.sbt import shifted_binary_tree
from repro.core.structure import SATStructure, single_level_structure
from repro.core.thresholds import FixedThresholds, NormalThresholds, all_sizes
from repro.testkit.oracles import brute_force_bursts


def structures_for(maxw):
    """A spread of valid structures covering maxw."""
    return [
        shifted_binary_tree(maxw),
        single_level_structure(maxw),
        SATStructure.from_pairs([(3, 1), (9, 3), (maxw + 5, 6)]),
    ]


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_oracle_poisson(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.poisson(4.0, 600).astype(float)
        th = NormalThresholds.from_data(data[:200], 5e-3, all_sizes(20))
        want = brute_force_bursts(data, th)
        for structure in structures_for(20):
            got = StreamingDetector(structure, th).detect(data)
            assert got.keys() == want, structure

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_oracle_exponential(self, seed):
        rng = np.random.default_rng(100 + seed)
        data = rng.exponential(10.0, 500)
        th = NormalThresholds.from_data(data[:200], 1e-2, all_sizes(17))
        want = brute_force_bursts(data, th)
        for structure in structures_for(17):
            got = StreamingDetector(structure, th).detect(data)
            assert got.keys() == want, structure

    def test_max_aggregate_matches_oracle(self):
        rng = np.random.default_rng(7)
        data = rng.uniform(0, 100, 400)
        th = FixedThresholds({w: 95.0 + w * 0.1 for w in range(1, 13)})
        want = brute_force_bursts(data, th, aggregate="max")
        got = StreamingDetector(shifted_binary_tree(12), th, MAX).detect(data)
        assert got.keys() == want

    def test_sparse_window_sizes(self):
        rng = np.random.default_rng(8)
        data = rng.poisson(3.0, 500).astype(float)
        th = NormalThresholds.from_data(data[:200], 1e-2, [5, 10, 20])
        want = brute_force_bursts(data, th)
        got = StreamingDetector(shifted_binary_tree(20), th).detect(data)
        assert got.keys() == want

    def test_burst_values_are_window_aggregates(self):
        data = np.array([1.0, 9.0, 1.0, 1.0, 9.0, 9.0])
        th = FixedThresholds({2: 18.0})
        got = StreamingDetector(shifted_binary_tree(2), th).detect(data)
        assert got.keys() == {(5, 2)}
        assert next(iter(got)).value == 18.0

    def test_burst_at_stream_tail_is_flushed(self):
        # Burst in the final points, ending where no regular node of the
        # covering level ends: only finish() can report it.
        data = np.zeros(21)
        data[18:21] = 50.0
        th = FixedThresholds({3: 120.0})
        detector = StreamingDetector(shifted_binary_tree(3), th)
        live = detector.process(data)
        tail = detector.finish()
        assert {b.key() for b in live + tail} == {(20, 3)}

    def test_burst_at_stream_start_clamped_window(self):
        data = np.array([100.0, 100.0, 0.0, 0.0])
        th = FixedThresholds({2: 150.0})
        got = StreamingDetector(shifted_binary_tree(2), th).detect(data)
        assert got.keys() == {(1, 2)}

    def test_size_one_bursts(self):
        data = np.array([0.0, 7.0, 0.0, 9.0])
        th = FixedThresholds({1: 6.0})
        got = StreamingDetector(shifted_binary_tree(2), th).detect(data)
        assert got.keys() == {(1, 1), (3, 1)}

    def test_empty_stream(self):
        th = FixedThresholds({2: 1.0})
        got = StreamingDetector(shifted_binary_tree(2), th).detect(
            np.empty(0)
        )
        assert len(got) == 0

    def test_stream_shorter_than_windows(self):
        data = np.array([5.0])
        th = FixedThresholds({1: 4.0, 8: 1.0})
        got = StreamingDetector(shifted_binary_tree(8), th).detect(data)
        # The size-8 window never fits; only the size-1 burst exists.
        assert got.keys() == {(0, 1)}


class TestInterface:
    def test_structure_must_cover(self):
        th = FixedThresholds({100: 1.0})
        with pytest.raises(ValueError, match="coverage"):
            StreamingDetector(shifted_binary_tree(16), th)

    def test_process_after_finish_raises(self):
        th = FixedThresholds({2: 1.0})
        d = StreamingDetector(shifted_binary_tree(2), th)
        d.detect(np.ones(4))
        with pytest.raises(RuntimeError):
            d.process(np.ones(2))
        with pytest.raises(RuntimeError):
            d.finish()

    def test_incremental_process_equals_detect(self, rng):
        data = rng.poisson(5.0, 300).astype(float)
        th = NormalThresholds.from_data(data[:100], 1e-2, all_sizes(10))
        whole = StreamingDetector(shifted_binary_tree(10), th).detect(data)
        d = StreamingDetector(shifted_binary_tree(10), th)
        bursts = []
        for lo in range(0, 300, 37):
            bursts.extend(d.process(data[lo : lo + 37]))
        bursts.extend(d.finish())
        assert {b.key() for b in bursts} == whole.keys()

    def test_length_property(self):
        th = FixedThresholds({2: 1e9})
        d = StreamingDetector(shifted_binary_tree(2), th)
        d.process(np.zeros(5))
        assert d.length == 5


class TestCounters:
    def test_update_counts(self):
        data = np.zeros(16)
        th = FixedThresholds({2: 1e9})
        d = StreamingDetector(shifted_binary_tree(2), th)
        d.detect(data)
        # Level 0: 16 updates; level 1 (shift 1): 16 nodes.
        assert d.counters.updates[0] == 16
        assert d.counters.updates[1] == 16

    def test_no_alarms_no_search(self):
        data = np.zeros(64)
        th = FixedThresholds({4: 5.0})
        d = StreamingDetector(shifted_binary_tree(4), th)
        d.detect(data)
        assert d.counters.total_alarms == 0
        assert d.counters.total_search_cells == 0
        assert d.counters.bursts == 0

    def test_alarm_triggers_search_cells(self):
        data = np.full(64, 10.0)
        th = FixedThresholds({4: 20.0})
        d = StreamingDetector(shifted_binary_tree(4), th)
        d.detect(data)
        assert d.counters.total_alarms > 0
        assert d.counters.total_search_cells > 0
        assert d.counters.bursts > 0

    def test_level0_comparisons_only_when_size1_wanted(self):
        data = np.zeros(10)
        th1 = FixedThresholds({1: 5.0, 2: 5.0})
        th2 = FixedThresholds({2: 5.0})
        d1 = StreamingDetector(shifted_binary_tree(2), th1)
        d1.detect(data)
        d2 = StreamingDetector(shifted_binary_tree(2), th2)
        d2.detect(data)
        assert d1.counters.filter_comparisons[0] == 10
        assert d2.counters.filter_comparisons[0] == 0
