"""Durability tests: WAL framing, atomic snapshots, crash recovery.

The contract under test is crash-anywhere equivalence: kill the durable
ingestion pipeline at *any* traced IO operation — at the op boundary or
tearing a write mid-entry — and recovery under ``"trim"`` must continue
byte-identically (bursts, per-level operation counters, amendment
ledger) to a run that never crashed, while ``"strict"`` must either do
the same or refuse with :class:`CorruptWalError` exactly when data was
really torn.  The sweep here drives the same
:mod:`repro.durable.fsio` hook the testkit's ``crash_recover`` relation
uses, over every traced operation of a recorded run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.chunked import ChunkedDetector
from repro.core.multi import MultiStreamDetector
from repro.core.sbt import shifted_binary_tree
from repro.core.thresholds import NormalThresholds, all_sizes
from repro.durable import fsio
from repro.durable.fsio import (
    KillAtHook,
    OpCountingHook,
    SimulatedCrash,
    atomic_write_bytes,
    crash_hook,
)
from repro.durable.ingestor import (
    DurableMultiStreamIngestor,
    DurableStreamIngestor,
)
from repro.durable.snapshot import (
    carry_from_dict,
    carry_to_dict,
    load_latest_snapshot,
    snapshot_paths,
    write_snapshot,
)
from repro.durable.wal import (
    CorruptWalError,
    WriteAheadLog,
    entry_records,
    scan_wal,
)
from repro.ingest import AmendmentLedger, StreamIngestor
from repro.ingest.ledger import BurstAmended, BurstRetracted
from repro.io.spec import DetectorSpec
from repro.runtime import (
    Fault,
    FaultPlan,
    ParallelMultiStreamDetector,
    SupervisorPolicy,
)

needs_dev_shm = pytest.mark.skipif(
    not Path("/dev/shm").is_dir(), reason="POSIX shared memory not mounted"
)

#: Short deadlines so an injected worker kill resolves in ~a second.
FAST_SUPERVISION = SupervisorPolicy(
    deadline=2.0, term_grace=0.5, backoff_base=0.01, backoff_cap=0.05
)


@pytest.fixture
def spec(rng):
    train = rng.poisson(6.0, 600).astype(np.float64)
    thresholds = NormalThresholds.from_data(train, 1e-3, all_sizes(16))
    return DetectorSpec(shifted_binary_tree(16), thresholds)


def assert_counters_equal(a, b):
    assert np.array_equal(a.updates, b.updates)
    assert np.array_equal(a.filter_comparisons, b.filter_comparisons)
    assert np.array_equal(a.alarms, b.alarms)
    assert np.array_equal(a.search_cells, b.search_cells)
    assert a.bursts == b.bursts


# ---------------------------------------------------------------------------
# Write-ahead log
# ---------------------------------------------------------------------------

class TestWal:
    def test_append_rolls_segments_and_scan_reads_back(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_entries=3)
        for i in range(8):
            assert wal.append("push", {"t": i, "v": float(i)}) == i
        wal.close()
        # 8 entries at 3/segment: two full segments plus a sealed stub.
        names = sorted(p.name for p in tmp_path.glob("wal-*"))
        assert names == [
            "wal-00000000.log",
            "wal-00000001.log",
            "wal-00000002.log",
        ]
        scan = scan_wal(tmp_path, "strict")
        assert [e["lsn"] for e in scan.entries] == list(range(8))
        assert [e["t"] for e in scan.entries] == list(range(8))
        assert scan.trimmed_entries == 0
        assert scan.next_segment == 3
        assert scan.next_lsn == 8

    def test_scan_seals_the_active_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_entries=100)
        wal.append("push", {"t": 0, "v": 1.0})
        wal.append("finish", {})
        # Abandon without close(): the segment is still .open.
        wal._file.close()
        assert list(tmp_path.glob("wal-*.open"))
        scan = scan_wal(tmp_path, "strict")
        assert scan.next_lsn == 2
        assert not list(tmp_path.glob("wal-*.open"))
        assert list(tmp_path.glob("wal-*.log"))
        # Re-scan of the canonicalized directory agrees.
        assert scan_wal(tmp_path, "strict").entries == scan.entries

    @staticmethod
    def _torn_wal(directory: Path, cut: int) -> None:
        """A WAL whose active segment loses its last ``cut`` bytes."""
        wal = WriteAheadLog(directory, segment_entries=100)
        wal.append("push", {"t": 0, "v": 1.0})
        wal.append("batch", {"t": [1, 2, 3], "v": [1.0, 2.0, 3.0]})
        wal._file.close()
        [active] = directory.glob("wal-*.open")
        raw = active.read_bytes()
        active.write_bytes(raw[: len(raw) - cut])

    def test_torn_tail_strict_raises(self, tmp_path):
        self._torn_wal(tmp_path, cut=5)
        with pytest.raises(CorruptWalError, match="torn tail"):
            scan_wal(tmp_path, "strict")

    def test_torn_tail_trim_quarantines_with_exact_accounting(
        self, tmp_path
    ):
        self._torn_wal(tmp_path, cut=5)
        scan = scan_wal(tmp_path, "trim")
        # The batch entry died; its record count survives in the header.
        assert scan.next_lsn == 1
        assert scan.trimmed_entries == 1
        assert scan.trimmed_records == 3
        assert list(tmp_path.glob("wal-*.corrupt"))
        # The repaired directory is clean under strict from now on.
        again = scan_wal(tmp_path, "strict")
        assert again.entries == scan.entries
        assert again.trimmed_entries == 0

    def test_damage_inside_sealed_segment_is_never_trimmable(
        self, tmp_path
    ):
        wal = WriteAheadLog(tmp_path, segment_entries=2)
        for i in range(4):
            wal.append("push", {"t": i, "v": float(i)})
        wal.close()
        first = tmp_path / "wal-00000000.log"
        raw = bytearray(first.read_bytes())
        raw[4] ^= 0xFF
        first.write_bytes(bytes(raw))
        for policy in ("strict", "trim"):
            with pytest.raises(CorruptWalError, match="sealed segment"):
                scan_wal(tmp_path, policy)

    def test_missing_sealed_segment_detected(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_entries=2)
        for i in range(6):
            wal.append("push", {"t": i, "v": float(i)})
        wal.close()
        (tmp_path / "wal-00000001.log").unlink()
        with pytest.raises(CorruptWalError, match="missing sealed"):
            scan_wal(tmp_path, "trim")

    def test_multiple_active_segments_fatal(self, tmp_path):
        (tmp_path / "wal-00000000.open").write_bytes(b"")
        (tmp_path / "wal-00000001.open").write_bytes(b"")
        with pytest.raises(CorruptWalError, match="multiple active"):
            scan_wal(tmp_path, "trim")

    def test_leftover_open_with_sealed_twin_is_superseded(self, tmp_path):
        # An interrupted trim leaves both wal-N.log (republished) and
        # wal-N.open (damaged original); the sealed twin wins.
        wal = WriteAheadLog(tmp_path, segment_entries=100)
        wal.append("push", {"t": 0, "v": 1.0})
        wal.close()
        (tmp_path / "wal-00000000.open").write_bytes(b"garbage")
        scan = scan_wal(tmp_path, "strict")
        assert scan.next_lsn == 1
        assert not list(tmp_path.glob("wal-*.open"))

    def test_invalid_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="recovery must be"):
            scan_wal(tmp_path, "fix-everything")

    def test_entry_records_accounting(self):
        assert entry_records({"op": "push", "t": 3, "v": 1.0}) == 1
        assert entry_records({"op": "batch", "t": [1, 2], "v": [0, 0]}) == 2
        assert entry_records({"op": "punctuate", "w": 9}) == 0
        assert entry_records({"op": "correct", "t": 1, "v": 0.0}) == 0
        assert entry_records({"op": "finish"}) == 0


# ---------------------------------------------------------------------------
# fsio: atomic publication survives a kill at every traced operation
# ---------------------------------------------------------------------------

class TestAtomicWrite:
    def test_never_observable_half_written(self, tmp_path):
        target = tmp_path / "meta.json"
        old, new = b"old contents\n", b"replacement, longer contents\n"
        counting = OpCountingHook()
        target.write_bytes(old)
        with crash_hook(counting):
            atomic_write_bytes(target, new)
        assert target.read_bytes() == new
        total = counting.count
        assert total >= 4  # write, fsync, rename, dir fsync

        for index in range(total):
            for tear in (None, 0.5):
                target.write_bytes(old)
                with crash_hook(KillAtHook(index, tear)):
                    with pytest.raises(SimulatedCrash):
                        atomic_write_bytes(target, new)
                # Old content until the rename op; new after; never a mix.
                assert target.read_bytes() in (old, new)

    def test_tear_on_write_keeps_prefix_only(self, tmp_path):
        f = fsio.open_append(tmp_path / "seg")
        with crash_hook(KillAtHook(0, 0.5)):
            with pytest.raises(SimulatedCrash):
                fsio.append_bytes(f, b"0123456789")
        f.close()
        assert (tmp_path / "seg").read_bytes() == b"01234"


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------

class TestSnapshots:
    def test_round_trip_and_newest_wins(self, tmp_path):
        write_snapshot(tmp_path, 5, {"x": 1})
        write_snapshot(tmp_path, 12, {"x": 2})
        assert len(snapshot_paths(tmp_path)) == 2
        assert load_latest_snapshot(tmp_path) == (12, {"x": 2})

    def test_corrupt_snapshot_skipped(self, tmp_path):
        write_snapshot(tmp_path, 5, {"x": 1})
        newest = write_snapshot(tmp_path, 12, {"x": 2})
        raw = bytearray(newest.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        newest.write_bytes(bytes(raw))
        assert load_latest_snapshot(tmp_path) == (5, {"x": 1})

    def test_max_lsn_cap_ignores_post_trim_snapshots(self, tmp_path):
        write_snapshot(tmp_path, 5, {"x": 1})
        write_snapshot(tmp_path, 12, {"x": 2})
        assert load_latest_snapshot(tmp_path, max_lsn=9) == (5, {"x": 1})
        assert load_latest_snapshot(tmp_path, max_lsn=3) is None

    def test_empty_directory(self, tmp_path):
        assert load_latest_snapshot(tmp_path) is None

    def test_carry_survives_json(self, spec, rng):
        det = ChunkedDetector(spec.structure, spec.thresholds, spec.aggregate)
        det.process(rng.poisson(6.0, 300).astype(np.float64))
        carry = det.carry()
        back = carry_from_dict(
            json.loads(json.dumps(carry_to_dict(carry), sort_keys=True))
        )
        assert back.length == carry.length
        assert back.aggregate == carry.aggregate
        assert back.offset == carry.offset
        assert np.array_equal(back.tail, carry.tail)
        assert_counters_equal(back.counters, carry.counters)


# ---------------------------------------------------------------------------
# Durable single-stream ingestion
# ---------------------------------------------------------------------------

def _fingerprint(dur) -> tuple:
    """Everything the equivalence contract covers, JSON-stable."""
    return (
        tuple(
            sorted((b.end, b.size, b.value) for b in dur.final_bursts())
        ),
        json.dumps(dur.ledger.as_dict(), sort_keys=True),
        dur.counters.updates.tolist(),
        dur.counters.filter_comparisons.tolist(),
        dur.counters.alarms.tolist(),
        dur.counters.search_cells.tolist(),
        int(dur.counters.bursts),
    )


def _apply_ops(dur, ops) -> None:
    for op in ops:
        if op[0] == "push":
            dur.push(op[1], op[2])
        elif op[0] == "punctuate":
            dur.punctuate(op[1])
        elif op[0] == "correct":
            dur.correct(op[1], op[2])
        else:
            dur.finish()


def _scripted_ops(rng, n: int) -> list[tuple]:
    """In-order pushes with one punctuation and one correction mixed in."""
    vals = rng.poisson(6.0, n).astype(np.float64)
    ops: list[tuple] = [("push", t, float(v)) for t, v in enumerate(vals)]
    ops.insert(n // 2, ("punctuate", n // 2))
    # Rewrite a long-sealed bin near the end: the amendment path.
    ops.insert(n - 2, ("correct", 3, float(vals[3] + 40.0)))
    ops.append(("finish",))
    return ops


class TestDurableStream:
    def test_matches_plain_ingestor(self, spec, rng, tmp_path):
        ops = _scripted_ops(rng, 80)
        det = ChunkedDetector(
            spec.structure, spec.thresholds, spec.aggregate
        )
        plain = StreamIngestor(
            det, spec.thresholds, spec.aggregate, max_lateness=2
        )
        dur = DurableStreamIngestor(
            spec, tmp_path / "run", max_lateness=2, snapshot_every=16
        )
        for op in ops:
            if op[0] == "push":
                assert dur.push(op[1], op[2]) == plain.push(op[1], op[2])
            elif op[0] == "punctuate":
                assert dur.punctuate(op[1]) == plain.punctuate(op[1])
            elif op[0] == "correct":
                dur.correct(op[1], op[2])
                plain.correct(op[1], op[2])
            else:
                assert dur.finish() == plain.finish()
        assert tuple(dur.final_bursts()) == tuple(plain.final_bursts())
        assert dur.ledger.as_dict() == plain.ledger.as_dict()
        assert_counters_equal(dur.counters, det.counters)

    def test_second_run_in_same_directory_rejected(self, spec, tmp_path):
        DurableStreamIngestor(spec, tmp_path / "run")
        with pytest.raises(FileExistsError, match="already holds"):
            DurableStreamIngestor(spec, tmp_path / "run")

    def test_recover_of_empty_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no durable run"):
            DurableStreamIngestor.recover(tmp_path)

    def test_snapshot_cadence_and_recovery_from_newest(
        self, spec, rng, tmp_path
    ):
        dur = DurableStreamIngestor(
            spec, tmp_path / "run", snapshot_every=5
        )
        for t, v in enumerate(rng.poisson(6.0, 12).astype(np.float64)):
            dur.push(t, float(v))
        dur._wal._file.close()
        lsns = [int(p.stem.split("-")[1]) for p in
                snapshot_paths(tmp_path / "run")]
        assert lsns == [5, 10]
        _, report = DurableStreamIngestor.recover(tmp_path / "run")
        assert report.snapshot_lsn == 10
        assert report.replayed_entries == 2
        assert report.ops_applied == 12
        assert not report.finished

    def test_recover_mid_run_continues_byte_identically(
        self, spec, rng, tmp_path
    ):
        ops = _scripted_ops(rng, 80)
        ref = DurableStreamIngestor(
            spec, tmp_path / "ref", max_lateness=2, snapshot_every=16
        )
        _apply_ops(ref, ops)
        want = _fingerprint(ref)

        cut = len(ops) // 2
        dur = DurableStreamIngestor(
            spec,
            tmp_path / "run",
            max_lateness=2,
            snapshot_every=16,
            segment_entries=7,
        )
        _apply_ops(dur, ops[:cut])
        dur._wal._file.close()  # abandoned, not closed

        resumed, report = DurableStreamIngestor.recover(tmp_path / "run")
        assert report.ops_applied == cut
        assert report.trimmed_entries == 0
        assert not report.finished
        _apply_ops(resumed, ops[report.ops_applied :])
        assert _fingerprint(resumed) == want

    def test_recover_finished_run(self, spec, rng, tmp_path):
        ops = _scripted_ops(rng, 60)
        dur = DurableStreamIngestor(
            spec, tmp_path / "run", max_lateness=2
        )
        _apply_ops(dur, ops)
        want = _fingerprint(dur)
        resumed, report = DurableStreamIngestor.recover(tmp_path / "run")
        assert report.finished
        assert resumed.finished
        assert _fingerprint(resumed) == want

    def test_crash_anywhere_sweep(self, spec, rng, tmp_path):
        """Kill the pipeline at traced IO offsets; recovery must agree.

        ``trim`` must always land byte-identical to the uninterrupted
        run; ``strict`` must do the same or refuse with
        :class:`CorruptWalError` — and when it refuses, ``trim`` on the
        same crash must report genuinely trimmed entries.
        """
        vals = rng.poisson(6.0, 36).astype(np.float64)
        ops = [("push", t, float(v)) for t, v in enumerate(vals)]
        ops.append(("finish",))
        knobs = dict(max_lateness=2, snapshot_every=6, segment_entries=5)

        counting = OpCountingHook()
        ref = DurableStreamIngestor(spec, tmp_path / "ref", **knobs)
        with crash_hook(counting):
            _apply_ops(ref, ops)
        want = _fingerprint(ref)
        total = counting.count
        assert total > 40  # the run is IO-dense enough to be worth sweeping

        def crashed_run(directory, kill, tear):
            try:
                with crash_hook(KillAtHook(kill, tear)):
                    dur = DurableStreamIngestor(spec, directory, **knobs)
                    _apply_ops(dur, ops)
            except SimulatedCrash:
                return True
            return False

        def recover_and_compare(directory, policy):
            resumed, report = DurableStreamIngestor.recover(
                directory, recovery=policy
            )
            if not report.finished:
                _apply_ops(resumed, ops[report.ops_applied :])
            assert _fingerprint(resumed) == want, (
                f"{policy} diverged: {report.summary()}"
            )
            return report

        strict_raises = 0
        for kill in range(total):
            for tear in (None,) if kill % 5 else (None, 0.5):
                trim_dir = tmp_path / f"t{kill}-{tear}"
                assert crashed_run(trim_dir, kill, tear)
                try:
                    trim_report = recover_and_compare(trim_dir, "trim")
                except FileNotFoundError:
                    # Crash before meta.json became durable: the run
                    # never existed; a fresh start is the recovery.
                    assert kill < 8
                    continue
                strict_dir = tmp_path / f"s{kill}-{tear}"
                assert crashed_run(strict_dir, kill, tear)
                try:
                    recover_and_compare(strict_dir, "strict")
                except CorruptWalError:
                    # strict refused: trim must have repaired real loss.
                    strict_raises += 1
                    assert trim_report.trimmed_entries > 0
        # The sweep genuinely exercised the torn-tail path.
        assert strict_raises > 0


# ---------------------------------------------------------------------------
# Durable fleets, serial and parallel
# ---------------------------------------------------------------------------

def _multi_fingerprint(dur) -> tuple:
    bursts = {
        name: tuple(sorted((b.end, b.size, b.value) for b in burst_set))
        for name, burst_set in dur.final_bursts().items()
    }
    return (bursts, json.dumps(dur.ledger().as_dict(), sort_keys=True))


def _feed_multi(dur, feeds, chunk: int) -> None:
    n = max(len(v) for v in feeds.values())
    for lo in range(0, n, chunk):
        for name in sorted(feeds):
            vals = feeds[name][lo : lo + chunk]
            if vals.size:
                ts = np.arange(lo, lo + vals.size, dtype=np.int64)
                dur.push_batch(name, ts, vals)
    dur.finish()


class TestDurableMulti:
    @pytest.fixture
    def feeds(self, rng):
        return {
            "a": rng.poisson(6.0, 600).astype(np.float64),
            "b": rng.exponential(5.0, 540),
        }

    def _serial_fleet(self, spec, names):
        return MultiStreamDetector.shared(
            list(names), spec.structure, spec.thresholds,
            aggregate=spec.aggregate,
        )

    def test_recover_mid_run_matches_uninterrupted(
        self, spec, feeds, tmp_path
    ):
        ref = DurableMultiStreamIngestor(
            self._serial_fleet(spec, feeds),
            spec,
            tmp_path / "ref",
            snapshot_every=3,
        )
        _feed_multi(ref, feeds, chunk=150)
        want = _multi_fingerprint(ref)

        dur = DurableMultiStreamIngestor(
            self._serial_fleet(spec, feeds),
            spec,
            tmp_path / "run",
            snapshot_every=3,
        )
        # Feed only the first five batches, then abandon.
        sent = 0
        n = max(len(v) for v in feeds.values())
        for lo in range(0, n, 150):
            for name in sorted(feeds):
                vals = feeds[name][lo : lo + 150]
                if vals.size and sent < 5:
                    ts = np.arange(lo, lo + vals.size, dtype=np.int64)
                    dur.push_batch(name, ts, vals)
                    sent += 1
        dur._wal._file.close()

        resumed, report = DurableMultiStreamIngestor.recover(
            tmp_path / "run"
        )
        assert report.snapshot_lsn > 0
        assert not report.finished
        # Re-send from the record offset (batch boundaries may differ).
        skip = report.records_applied
        seen = {name: 0 for name in feeds}
        for lo in range(0, n, 150):
            for name in sorted(feeds):
                vals = feeds[name][lo : lo + 150]
                if not vals.size:
                    continue
                ts = np.arange(lo, lo + vals.size, dtype=np.int64)
                done = sum(seen.values())
                if done + vals.size > skip:
                    off = max(0, skip - done) if done < skip else 0
                    resumed.push_batch(name, ts[off:], vals[off:])
                seen[name] += vals.size
        resumed.finish()
        assert _multi_fingerprint(resumed) == want

    def test_parallel_checkpoints_match_serial(self, spec, feeds):
        serial = self._serial_fleet(spec, feeds)
        fleet = ParallelMultiStreamDetector.shared(
            list(feeds), spec.structure, spec.thresholds,
            aggregate=spec.aggregate, workers=2,
        )
        with fleet:
            for lo in range(0, 600, 200):
                chunks = {
                    name: feeds[name][lo : lo + 200] for name in feeds
                }
                chunks = {n: c for n, c in chunks.items() if c.size}
                serial.process(chunks)
                fleet.process(chunks)
                want = serial.checkpoints()
                got = fleet.checkpoints()
                assert sorted(got) == sorted(want)
                for name in want:
                    assert got[name].length == want[name].length
                    assert got[name].aggregate == want[name].aggregate
                    assert got[name].offset == want[name].offset
                    assert np.array_equal(
                        got[name].tail, want[name].tail
                    )
                    assert_counters_equal(
                        got[name].counters, want[name].counters
                    )
                theirs = serial.stream_counters()
                for name, counters in fleet.stream_counters().items():
                    assert_counters_equal(counters, theirs[name])

    def test_from_carries_resumes_byte_identically(self, spec, feeds):
        serial = self._serial_fleet(spec, feeds)
        ref = self._serial_fleet(spec, feeds)
        want = ref.detect(feeds, chunk_size=200)

        head = {name: vals[:200] for name, vals in feeds.items()}
        got = {name: list(bs) for name, bs in serial.process(head).items()}
        resumed = ParallelMultiStreamDetector.from_carries(
            spec.structure, spec.thresholds, serial.checkpoints(),
            workers=2,
        )
        with resumed:
            for lo in range(200, 600, 200):
                chunks = {
                    name: feeds[name][lo : lo + 200] for name in feeds
                }
                chunks = {n: c for n, c in chunks.items() if c.size}
                for name, bursts in resumed.process(chunks).items():
                    got[name].extend(bursts)
            for name, bursts in resumed.finish().items():
                got[name].extend(bursts)
            for name in feeds:
                # detect() returns a sorted BurstSet; process() emits in
                # discovery order — compare as sets of identical bursts.
                assert sorted(got[name]) == sorted(want[name]), name
                assert_counters_equal(
                    resumed.counters(name), ref.detector(name).counters
                )

    @needs_dev_shm
    def test_supervised_kill_with_snapshots_pending(
        self, spec, feeds, tmp_path
    ):
        """The crash matrix: a worker dies mid-round while the durable
        layer is between snapshots.  The supervised run must heal, leak
        nothing, stay byte-identical to serial, and leave a durable
        directory that recovers to the same finished state."""
        ref = DurableMultiStreamIngestor(
            self._serial_fleet(spec, feeds),
            spec,
            tmp_path / "ref",
            snapshot_every=3,
        )
        _feed_multi(ref, feeds, chunk=150)
        want = _multi_fingerprint(ref)

        before = set(os.listdir("/dev/shm"))
        fleet = ParallelMultiStreamDetector.shared(
            list(feeds),
            spec.structure,
            spec.thresholds,
            aggregate=spec.aggregate,
            workers=2,
            faults="restart",
            supervision=FAST_SUPERVISION,
            # Each ingestion-driven round addresses one stream's owner;
            # arming both workers guarantees whoever owns round 2 dies.
            fault_plan=FaultPlan(
                (Fault("kill", 2, worker=0), Fault("kill", 2, worker=1))
            ),
        )
        dur = DurableMultiStreamIngestor(
            fleet, spec, tmp_path / "run", snapshot_every=3
        )
        _feed_multi(dur, feeds, chunk=150)
        assert fleet.total_restarts >= 1  # the kill genuinely fired
        assert not fleet.degraded
        assert _multi_fingerprint(dur) == want
        fleet.close()
        assert set(os.listdir("/dev/shm")) - before == set()

        recovered, report = DurableMultiStreamIngestor.recover(
            tmp_path / "run"
        )
        assert report.finished
        assert _multi_fingerprint(recovered) == want


# ---------------------------------------------------------------------------
# Amendment ledger serialization
# ---------------------------------------------------------------------------

class TestLedgerRoundTrip:
    @staticmethod
    def _busy_ledger() -> AmendmentLedger:
        ledger = AmendmentLedger()
        ledger.records = 100
        ledger.records_sealed = 90
        ledger.bins_sealed = 40
        ledger.duplicates_merged = 3
        ledger.late_dropped = 2
        ledger.late_amended = 4
        ledger.corrections = 1
        ledger.windows_reevaluated = 7
        # None old_value: a burst discovered late, not revised — the
        # JSON null + None-aware sort-key case.
        ledger.record_amendment(BurstAmended(12, 4, None, 9.5))
        ledger.record_amendment(BurstAmended(12, 4, 8.25, 9.5))
        ledger.record_amendment(BurstAmended(7, 2, 3.0, 4.0))
        ledger.record_retraction(BurstRetracted(20, 8, 15.0, 1.0))
        return ledger

    def test_json_round_trip_is_a_fixed_point(self):
        ledger = self._busy_ledger()
        payload = json.loads(json.dumps(ledger.to_dict(), sort_keys=True))
        back = AmendmentLedger.from_dict(payload)
        assert back.as_dict() == ledger.as_dict()
        assert back.to_dict() == payload

    def test_event_order_is_canonical(self):
        a = self._busy_ledger()
        b = AmendmentLedger()
        b.records, b.records_sealed, b.bins_sealed = 100, 90, 40
        b.duplicates_merged, b.late_dropped = 3, 2
        b.late_amended, b.corrections, b.windows_reevaluated = 4, 1, 7
        # Same events, scrambled arrival order.
        b.record_retraction(BurstRetracted(20, 8, 15.0, 1.0))
        b.record_amendment(BurstAmended(7, 2, 3.0, 4.0))
        b.record_amendment(BurstAmended(12, 4, 8.25, 9.5))
        b.record_amendment(BurstAmended(12, 4, None, 9.5))
        assert a.as_dict() == b.as_dict()
