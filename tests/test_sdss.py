"""Calibration and behaviour tests for the SDSS traffic surrogate."""

import numpy as np
import pytest

from repro.streams.sdss import SDSSTrafficSimulator
from repro.streams.stats import describe


class TestCalibration:
    @pytest.fixture(scope="class")
    def sample(self):
        return SDSSTrafficSimulator(seed=1).generate(200_000)

    def test_mean_near_table2(self, sample):
        # Paper Table 2: mean 120.95.
        assert describe(sample).mean == pytest.approx(120.95, rel=0.08)

    def test_std_near_table2(self, sample):
        # Paper Table 2: std 64.87.
        assert describe(sample).std == pytest.approx(64.87, rel=0.12)

    def test_support_plausible(self, sample):
        # Paper Table 2: min 0, max 576 over 31.5M points; a shorter
        # segment should stay the same order of magnitude.
        stats = describe(sample)
        assert stats.min >= 0
        assert 300 < stats.max < 1500

    def test_unimodal_interior_mode(self, sample):
        # Paper Fig. 17a: unimodal, Poisson-like histogram.
        counts, _ = np.histogram(sample, bins=12)
        mode = int(np.argmax(counts))
        assert 0 < mode < 11

    def test_integer_counts(self, sample):
        assert np.all(sample == np.round(sample))

    def test_window_sums_match_iid_scaling(self, sample):
        # The detection-critical property: window-sum variance grows
        # ~linearly in w (excess variance lives at short time scales), so
        # the paper's normal threshold formula calibrates.
        from repro.core.aggregates import sliding_sum

        var1 = sample.var()
        var64 = sliding_sum(sample, 64).var() / 64
        assert var64 == pytest.approx(var1, rel=0.35)


class TestInterface:
    def test_deterministic_given_seed_and_segment(self):
        sim = SDSSTrafficSimulator(seed=7)
        np.testing.assert_array_equal(sim.generate(500), sim.generate(500))

    def test_segments_differ(self):
        sim = SDSSTrafficSimulator(seed=7)
        a = sim.generate(500, start_second=0)
        b = sim.generate(500, start_second=604_800)
        assert not np.array_equal(a, b)

    def test_rate_is_positive_and_periodic(self):
        sim = SDSSTrafficSimulator(seed=7)
        t = np.arange(0, 2 * 86_400, 600)
        rate = sim.rate(t)
        assert (rate > 0).all()
        day1 = sim.rate(np.arange(0, 86_400, 600))
        day2 = sim.rate(np.arange(86_400, 2 * 86_400, 600))
        np.testing.assert_allclose(day1, day2, rtol=0.05)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SDSSTrafficSimulator(base_rate=0.0)
        with pytest.raises(ValueError):
            SDSSTrafficSimulator(dispersion=0.0)
        with pytest.raises(ValueError):
            SDSSTrafficSimulator(diurnal_amplitude=1.5)
