"""Unit tests for the b-model self-similar traffic generator."""

import numpy as np
import pytest

from repro.streams.bmodel import b_model_series


class TestBModel:
    def test_length_and_conservation(self):
        series = b_model_series(1000.0, 8, bias=0.8, seed=1)
        assert series.size == 256
        assert series.sum() == pytest.approx(1000.0)

    def test_flat_at_half_bias(self):
        series = b_model_series(1024.0, 5, bias=0.5, seed=2)
        np.testing.assert_allclose(series, 32.0)

    def test_burstiness_grows_with_bias(self):
        flat = b_model_series(1e6, 12, bias=0.55, seed=3)
        bursty = b_model_series(1e6, 12, bias=0.9, seed=3)
        assert bursty.std() > 3 * flat.std()

    def test_nonnegative(self):
        assert (b_model_series(100.0, 10, bias=0.95, seed=4) >= 0).all()

    def test_deterministic(self):
        a = b_model_series(10.0, 6, seed=9)
        b = b_model_series(10.0, 6, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_zero_levels(self):
        series = b_model_series(5.0, 0, seed=0)
        assert list(series) == [5.0]

    def test_self_similarity_of_halves(self):
        # Each half conserves the mass assigned at the first split:
        # the two halves sum to the total.
        series = b_model_series(100.0, 10, bias=0.8, seed=5)
        half = series.size // 2
        left, right = series[:half].sum(), series[half:].sum()
        assert left + right == pytest.approx(100.0)
        # The first split assigned the bias fraction to one half.
        assert sorted([left, right]) == pytest.approx([20.0, 80.0])

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            b_model_series(-1.0, 4)
        with pytest.raises(ValueError):
            b_model_series(1.0, 4, bias=0.4)
        with pytest.raises(ValueError):
            b_model_series(1.0, 4, bias=1.0)
        with pytest.raises(ValueError):
            b_model_series(1.0, 31)
