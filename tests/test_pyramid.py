"""Unit tests for the aggregation pyramid and its cell algebra."""

import numpy as np
import pytest

from repro.core.aggregates import MAX
from repro.core.pyramid import (
    AggregationPyramid,
    Cell,
    embedded_cells,
    overlap,
    shades,
    shadow,
)
from repro.core.sbt import shifted_binary_tree
from repro.core.thresholds import FixedThresholds


class TestCellAlgebra:
    def test_shadow(self):
        c = Cell(h=3, t=10)
        assert c.size == 4
        assert shadow(c) == (7, 10)

    def test_shades(self):
        outer = Cell(5, 10)  # covers [5, 10]
        assert shades(outer, Cell(2, 8))  # [6, 8]
        assert shades(outer, outer)
        assert not shades(outer, Cell(2, 12))
        assert not shades(Cell(2, 8), outer)

    def test_overlap_cell(self):
        c1 = Cell(4, 8)  # [4, 8]
        c2 = Cell(4, 11)  # [7, 11]
        ov = overlap(c1, c2)
        assert shadow(ov) == (7, 8)
        # Paper Fig. 3: the overlap is shaded by both cells.
        assert shades(c1, ov) and shades(c2, ov)

    def test_overlap_disjoint(self):
        assert overlap(Cell(1, 3), Cell(1, 9)) is None

    def test_overlap_symmetric(self):
        c1, c2 = Cell(4, 8), Cell(4, 11)
        assert overlap(c1, c2) == overlap(c2, c1)


class TestStreamingPyramid:
    def test_update_rule_matches_bruteforce(self, rng):
        data = rng.uniform(0, 10, 40)
        pyr = AggregationPyramid(window=12)
        pyr.extend(data)
        for t in range(28, 40):
            for h in range(min(t + 1, 12)):
                want = data[t - h : t + 1].sum()
                assert pyr.cell(h, t) == pytest.approx(want)

    def test_max_aggregate(self, rng):
        data = rng.uniform(0, 10, 30)
        pyr = AggregationPyramid(window=8, aggregate=MAX)
        pyr.extend(data)
        for t in range(22, 30):
            for h in range(8):
                assert pyr.cell(h, t) == data[t - h : t + 1].max()

    def test_push_returns_column(self):
        pyr = AggregationPyramid(window=4)
        col = pyr.push(3.0)
        assert list(col) == [3.0]
        col = pyr.push(2.0)
        assert list(col) == [2.0, 5.0]

    def test_cell_bounds(self):
        pyr = AggregationPyramid(window=4)
        pyr.extend([1.0, 2.0])
        with pytest.raises(IndexError):
            pyr.cell(4, 1)  # beyond window
        with pytest.raises(IndexError):
            pyr.cell(2, 1)  # begins before the stream
        with pytest.raises(IndexError):
            pyr.cell(0, 5)  # not pushed yet

    def test_retention(self):
        pyr = AggregationPyramid(window=3)
        pyr.extend(np.arange(10.0))
        with pytest.raises(IndexError, match="retained"):
            pyr.cell(0, 2)
        assert pyr.cell(0, 9) == 9.0

    def test_column(self):
        pyr = AggregationPyramid(window=4)
        pyr.extend([1.0, 2.0, 3.0])
        assert list(pyr.column(2)) == [3.0, 5.0, 6.0]
        with pytest.raises(IndexError):
            pyr.column(99)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            AggregationPyramid(window=0)

    def test_bursts_at(self):
        pyr = AggregationPyramid(window=4)
        pyr.extend([1.0, 5.0, 1.0])
        th = FixedThresholds({1: 4.0, 2: 100.0, 3: 6.0})
        cells = pyr.bursts_at(1, th)
        assert Cell(0, 1) in cells  # value 5 >= f(1) = 4
        cells = pyr.bursts_at(2, th)
        assert Cell(2, 2) in cells  # 7 >= f(3) = 6
        assert Cell(1, 2) not in cells

    def test_length(self):
        pyr = AggregationPyramid(window=4)
        assert pyr.length == 0
        pyr.extend([1.0, 1.0])
        assert pyr.length == 2


class TestFromArray:
    def test_dense_pyramid(self):
        levels = AggregationPyramid.from_array(np.array([1.0, 4.0, 0.0, 3.0]))
        assert list(levels[0]) == [1.0, 4.0, 0.0, 3.0]
        assert list(levels[1]) == [5.0, 4.0, 3.0]
        assert list(levels[2]) == [5.0, 7.0]
        assert list(levels[3]) == [8.0]

    def test_max_height(self):
        levels = AggregationPyramid.from_array(np.ones(10), max_height=3)
        assert len(levels) == 3


class TestEmbedding:
    def test_sbt_embedding_levels(self):
        # Paper Fig. 4: SBT level i materializes pyramid cells at height
        # 2^i - 1, at every multiple of its shift.
        sbt = shifted_binary_tree(8)
        cells = embedded_cells(sbt, duration=32)
        heights = {c.h for c in cells}
        assert heights == {0, 1, 3, 7, 15}
        # Size-4 nodes (height 3) shift by 2: ends at odd times.
        level2 = sorted(c.t for c in cells if c.h == 3)
        assert level2 == list(range(1, 32, 2))

    def test_embedding_counts(self):
        sbt = shifted_binary_tree(4)
        cells = embedded_cells(sbt, duration=16)
        by_height = {}
        for c in cells:
            by_height[c.h] = by_height.get(c.h, 0) + 1
        assert by_height[0] == 16  # level 0, shift 1
        assert by_height[1] == 16  # size 2, shift 1
        assert by_height[3] == 8  # size 4, shift 2
        assert by_height[7] == 4  # size 8, shift 4
