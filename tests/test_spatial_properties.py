"""Property-based tests for the spatial extension.

The same load-bearing property as in 1-D, quantified over random valid
structures, random sparse grids and random thresholds: the spatial
detector reports exactly the brute-force set of over-threshold regions.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.thresholds import FixedThresholds
from repro.spatial import SpatialDetector, SpatialStructure, SummedAreaTable

from test_properties import sat_structures


@st.composite
def grids(draw, max_dim=18):
    h = draw(st.integers(4, max_dim))
    w = draw(st.integers(4, max_dim))
    cells = draw(
        st.lists(
            st.floats(0, 9, allow_nan=False, width=16),
            min_size=h * w,
            max_size=h * w,
        )
    )
    return np.array(cells).reshape(h, w)


def brute_force(grid, thresholds):
    out = set()
    height, width = grid.shape
    for size in thresholds.window_sizes:
        size = int(size)
        f = thresholds.threshold(size)
        for r in range(height - size + 1):
            for c in range(width - size + 1):
                if grid[r : r + size, c : c + size].sum() >= f:
                    out.add((r, c, size))
    return out


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    grid=grids(),
    structure=sat_structures(max_top=16),
    data=st.data(),
)
def test_spatial_detector_equals_bruteforce(grid, structure, data):
    sizes = data.draw(
        st.lists(
            st.integers(1, structure.coverage),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    table = {
        w: data.draw(st.floats(1.0, 300.0, allow_nan=False)) for w in sizes
    }
    thresholds = FixedThresholds(table)
    detector = SpatialDetector(SpatialStructure(structure), thresholds)
    got = detector.detect(grid)
    assert got.keys() == brute_force(grid, thresholds)


@settings(max_examples=40, deadline=None)
@given(grid=grids(), size=st.integers(1, 6))
def test_summed_area_table_random_boxes(grid, size):
    table = SummedAreaTable(grid)
    height, width = grid.shape
    if size > height or size > width:
        return
    for r in range(0, height - size + 1, max(1, size)):
        for c in range(0, width - size + 1, max(1, size)):
            want = grid[r : r + size, c : c + size].sum()
            assert abs(table.box(r, c, size, size) - want) < 1e-6
