"""Unit tests for the probability models feeding the cost model."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.core.aggregates import MAX, sliding_sum
from repro.core.search.training import (
    EmpiricalProbabilityModel,
    NormalProbabilityModel,
)


class TestNormalProbabilityModel:
    def test_matches_scipy(self):
        model = NormalProbabilityModel(10.0, 2.0)
        want = norm.sf((45.0 - 40.0) / (2.0 * 2.0))
        assert model.exceed_probability(4, 45.0) == pytest.approx(want)

    def test_vectorized_matches_scalar(self):
        model = NormalProbabilityModel(10.0, 2.0)
        ths = np.array([35.0, 40.0, 45.0])
        got = model.exceed_probabilities(4, ths)
        want = [model.exceed_probability(4, t) for t in ths]
        np.testing.assert_allclose(got, want)

    def test_zero_sigma(self):
        model = NormalProbabilityModel(10.0, 0.0)
        assert model.exceed_probability(4, 39.0) == 1.0
        assert model.exceed_probability(4, 41.0) == 0.0
        np.testing.assert_allclose(
            model.exceed_probabilities(4, np.array([39.0, 41.0])), [1.0, 0.0]
        )

    def test_from_data(self, rng):
        data = rng.poisson(7.0, 2000).astype(float)
        model = NormalProbabilityModel.from_data(data)
        assert model.mu == pytest.approx(data.mean())
        assert model.sigma == pytest.approx(data.std())

    def test_negative_sigma(self):
        with pytest.raises(ValueError):
            NormalProbabilityModel(1.0, -1.0)


class TestEmpiricalProbabilityModel:
    def test_counts_exceedances_exactly(self, rng):
        data = rng.poisson(5.0, 500).astype(float)
        model = EmpiricalProbabilityModel(data)
        sums = sliding_sum(data, 7)
        threshold = float(np.median(sums))
        want = (sums >= threshold).mean()
        assert model.exceed_probability(7, threshold) == pytest.approx(want)

    def test_boundary_inclusive(self):
        data = np.array([1.0, 1.0, 1.0, 1.0])
        model = EmpiricalProbabilityModel(data)
        # All windows of 2 sum to exactly 2.0: >= is inclusive.
        assert model.exceed_probability(2, 2.0) == 1.0
        assert model.exceed_probability(2, 2.0001) == 0.0

    def test_vectorized_matches_scalar(self, rng):
        data = rng.exponential(3.0, 400)
        model = EmpiricalProbabilityModel(data)
        ths = np.array([1.0, 10.0, 30.0, 1e9])
        got = model.exceed_probabilities(5, ths)
        want = [model.exceed_probability(5, float(t)) for t in ths]
        np.testing.assert_allclose(got, want)

    def test_window_larger_than_sample(self):
        data = np.ones(10)
        model = EmpiricalProbabilityModel(data)
        assert model.exceed_probability(100, 5.0) == 1.0
        assert model.exceed_probability(100, 50.0) == 0.0

    def test_max_aggregate(self, rng):
        data = rng.uniform(0, 10, 300)
        model = EmpiricalProbabilityModel(data, aggregate=MAX)
        p = model.exceed_probability(5, 9.0)
        from repro.core.aggregates import sliding_max

        want = (sliding_max(data, 5) >= 9.0).mean()
        assert p == pytest.approx(want)

    def test_cache_eviction(self, rng):
        data = rng.poisson(2.0, 200).astype(float)
        model = EmpiricalProbabilityModel(data, cache_size=2)
        for size in (2, 3, 4, 5):
            model.exceed_probability(size, 1.0)
        assert len(model._cache) == 2

    def test_cache_reuse_moves_to_end(self, rng):
        data = rng.poisson(2.0, 200).astype(float)
        model = EmpiricalProbabilityModel(data, cache_size=2)
        model.exceed_probability(2, 1.0)
        model.exceed_probability(3, 1.0)
        model.exceed_probability(2, 1.0)  # refresh 2
        model.exceed_probability(4, 1.0)  # evicts 3
        assert set(model._cache) == {2, 4}

    def test_too_short(self):
        with pytest.raises(ValueError):
            EmpiricalProbabilityModel(np.array([1.0]))
