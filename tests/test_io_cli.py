"""Tests for detector-spec persistence and the CLI."""

import json

import numpy as np
import pytest

from repro.__main__ import main as cli_main
from repro.core.naive import naive_detect
from repro.core.sbt import shifted_binary_tree
from repro.core.thresholds import FixedThresholds, NormalThresholds, all_sizes
from repro.io import DetectorSpec, load_spec, save_spec


class TestDetectorSpec:
    def _spec(self, rng):
        data = rng.poisson(5.0, 4000).astype(float)
        return DetectorSpec.train(data, 1e-4, all_sizes(32)), data

    def test_train_builds_working_detector(self, rng):
        spec, data = self._spec(rng)
        detector = spec.build_detector()
        got = detector.detect(data)
        assert got == naive_detect(data, spec.thresholds)

    def test_json_roundtrip_detects_identically(self, rng):
        spec, data = self._spec(rng)
        clone = DetectorSpec.from_json(spec.to_json())
        assert clone.structure == spec.structure
        a = spec.build_detector().detect(data)
        b = clone.build_detector().detect(data)
        assert a == b

    def test_file_roundtrip(self, rng, tmp_path):
        spec, _ = self._spec(rng)
        path = tmp_path / "spec.json"
        save_spec(spec, path)
        clone = load_spec(path)
        assert clone.structure == spec.structure
        np.testing.assert_allclose(
            clone.thresholds.values, spec.thresholds.values
        )

    def test_provenance_recorded(self, rng):
        spec, data = self._spec(rng)
        assert spec.provenance["trained_on_points"] == data.size
        assert spec.provenance["threshold_kind"] == "normal"

    def test_empirical_threshold_kind(self, rng):
        data = rng.exponential(5.0, 3000)
        spec = DetectorSpec.train(
            data, 1e-3, all_sizes(16), threshold_kind="empirical"
        )
        assert spec.build_detector().detect(data) == naive_detect(
            data, spec.thresholds
        )

    def test_invalid_threshold_kind(self, rng):
        with pytest.raises(ValueError):
            DetectorSpec.train(
                rng.poisson(5.0, 100).astype(float),
                1e-3,
                all_sizes(8),
                threshold_kind="psychic",
            )

    def test_coverage_validated(self):
        with pytest.raises(ValueError, match="coverage"):
            DetectorSpec(
                structure=shifted_binary_tree(4),
                thresholds=FixedThresholds({100: 1.0}),
            )

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="not a detector spec"):
            DetectorSpec.from_dict({"format": "something-else"})

    def test_describe(self, rng):
        spec, _ = self._spec(rng)
        text = spec.describe()
        assert "detector spec" in text and "provenance" in text

    def test_bad_aggregate_name_rejected_at_construction(self, rng):
        spec, _ = self._spec(rng)
        # __post_init__ validates the name eagerly, so a corrupt spec
        # fails at load time, not on first detect().
        with pytest.raises(ValueError, match="unknown aggregate"):
            DetectorSpec(
                structure=spec.structure,
                thresholds=spec.thresholds,
                aggregate_name="harmonic-mean",
            )

    def test_bad_aggregate_name_rejected_from_json(self, rng):
        spec, _ = self._spec(rng)
        payload = spec.to_dict()
        payload["aggregate"] = "median"
        with pytest.raises(ValueError, match="unknown aggregate"):
            DetectorSpec.from_dict(payload)

    @pytest.mark.parametrize(
        "grid", [[8, 4, 16], [4, 4, 8], [16, 8, 4]]
    )
    def test_non_monotone_window_grid_rejected(self, rng, grid):
        data = rng.poisson(5.0, 500).astype(float)
        with pytest.raises(ValueError, match="strictly increasing"):
            DetectorSpec.train(data, 1e-3, grid)

    def test_non_positive_window_rejected(self, rng):
        data = rng.poisson(5.0, 500).astype(float)
        with pytest.raises(ValueError, match=">= 1"):
            DetectorSpec.train(data, 1e-3, [0, 1, 2])


class TestCLI:
    @pytest.fixture
    def stream_files(self, rng, tmp_path):
        train = rng.poisson(5.0, 3000).astype(float)
        live = rng.poisson(5.0, 6000).astype(float)
        live[4000:4004] += 30.0
        train_path = tmp_path / "train.csv"
        live_path = tmp_path / "live.csv"
        train_path.write_text("\n".join(f"{x:g}" for x in train) + "\n")
        live_path.write_text("\n".join(f"{x:g}" for x in live) + "\n")
        return train_path, live_path, live

    def test_train_detect_inspect_roundtrip(
        self, stream_files, tmp_path, capsys
    ):
        train_path, live_path, live = stream_files
        spec_path = tmp_path / "spec.json"
        bursts_path = tmp_path / "bursts.csv"

        assert cli_main(
            [
                "train",
                str(train_path),
                "--max-window",
                "32",
                "-p",
                "1e-5",
                "-o",
                str(spec_path),
            ]
        ) == 0
        assert json.loads(spec_path.read_text())["format"].startswith("repro")

        assert cli_main(
            ["detect", str(spec_path), str(live_path), "-o", str(bursts_path)]
        ) == 0
        lines = bursts_path.read_text().strip().splitlines()
        assert lines[0] == "end,size,value"
        # The injected event must appear among reported bursts.
        ends = {int(line.split(",")[0]) for line in lines[1:]}
        assert any(4000 <= e <= 4040 for e in ends)

        assert cli_main(["inspect", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "detector spec" in out

    def test_detect_matches_library(self, stream_files, tmp_path):
        train_path, live_path, live = stream_files
        spec_path = tmp_path / "spec.json"
        cli_main(
            [
                "train",
                str(train_path),
                "--max-window",
                "24",
                "-o",
                str(spec_path),
            ]
        )
        bursts_path = tmp_path / "bursts.csv"
        cli_main(
            ["detect", str(spec_path), str(live_path), "-o", str(bursts_path)]
        )
        spec = load_spec(spec_path)
        want = naive_detect(live, spec.thresholds)
        lines = bursts_path.read_text().strip().splitlines()[1:]
        got = {
            (int(e), int(s))
            for e, s, _ in (line.split(",") for line in lines)
        }
        assert got == want.keys()

    def test_train_with_step(self, stream_files, tmp_path):
        train_path, _, _ = stream_files
        spec_path = tmp_path / "spec.json"
        cli_main(
            [
                "train",
                str(train_path),
                "--max-window",
                "60",
                "--step",
                "10",
                "-o",
                str(spec_path),
            ]
        )
        spec = load_spec(spec_path)
        assert list(spec.thresholds.window_sizes) == [10, 20, 30, 40, 50, 60]

    def test_empty_csv_fails(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(SystemExit):
            cli_main(
                ["train", str(empty), "--max-window", "8", "-o", "x.json"]
            )

    def test_detect_many_matches_detect(self, stream_files, tmp_path, rng):
        train_path, live_path, _ = stream_files
        spec_path = tmp_path / "spec.json"
        cli_main(
            ["train", str(train_path), "--max-window", "24",
             "-o", str(spec_path)]
        )
        streams = tmp_path / "streams"
        streams.mkdir()
        other = rng.poisson(5.0, 4321).astype(float)
        (streams / "a.csv").write_text(live_path.read_text())
        (streams / "b.csv").write_text(
            "\n".join(f"{x:g}" for x in other) + "\n"
        )
        single = tmp_path / "single.csv"
        cli_main(
            ["detect", str(spec_path), str(streams / "a.csv"),
             "-o", str(single), "--workers", "serial"]
        )
        assert cli_main(
            ["detect-many", str(spec_path), str(streams),
             "--workers", "serial"]
        ) == 0
        assert (
            (streams / "a.bursts.csv").read_text() == single.read_text()
        )
        # Outputs default into the stream directory; a rerun must not
        # ingest its own *.bursts.csv files as streams.
        assert cli_main(
            ["detect-many", str(spec_path), str(streams),
             "--workers", "serial"]
        ) == 0
        assert not (streams / "a.bursts.bursts.csv").exists()

    @pytest.mark.parametrize("bad", ["0", "-1", "-3", "2.5", "many", ""])
    def test_workers_rejects_non_positive_and_non_integer(
        self, bad, tmp_path, capsys
    ):
        # argparse type errors exit with code 2 before any file is read,
        # so dummy paths are fine here.
        with pytest.raises(SystemExit) as exc:
            cli_main(
                ["detect", "spec.json", "stream.csv", "--workers", bad]
            )
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "workers" in err
        if bad in ("0", "-1", "-3"):
            assert "'serial'" in err  # the fix is named in the message

    @pytest.mark.parametrize("good", ["auto", "serial", "1", "4"])
    def test_workers_accepts_valid_values(self, good):
        from repro.__main__ import _parse_workers

        parsed = _parse_workers(good)
        assert parsed == (good if good in ("auto", "serial") else int(good))

    def test_detect_many_empty_dir_fails(self, tmp_path):
        (tmp_path / "spec.json").write_text("{}")
        empty = tmp_path / "none"
        empty.mkdir()
        with pytest.raises(SystemExit, match="no .*csv streams"):
            cli_main(
                ["detect-many", str(tmp_path / "spec.json"), str(empty)]
            )

    def test_detect_many_survives_one_bad_file(
        self, stream_files, tmp_path, capsys
    ):
        # One malformed CSV must not abort the batch: the other streams
        # finish and write outputs, the failure lands in the summary,
        # and the exit code is non-zero.
        train_path, live_path, _ = stream_files
        spec_path = tmp_path / "spec.json"
        cli_main(
            ["train", str(train_path), "--max-window", "24",
             "-o", str(spec_path)]
        )
        streams = tmp_path / "streams"
        streams.mkdir()
        (streams / "good.csv").write_text(live_path.read_text())
        lines = live_path.read_text().splitlines()
        lines[100] = "oops"
        (streams / "bad.csv").write_text("\n".join(lines) + "\n")
        out = tmp_path / "out"
        code = cli_main(
            ["detect-many", str(spec_path), str(streams),
             "-o", str(out), "--workers", "serial"]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert (out / "good.bursts.csv").exists()
        assert not (out / "bad.bursts.csv").exists()
        assert "bad.csv:101" in captured.err
        assert "1 of 2 streams failed" in captured.err
        # The surviving stream's output matches a clean solo run.
        single = tmp_path / "single.csv"
        cli_main(
            ["detect", str(spec_path), str(streams / "good.csv"),
             "-o", str(single), "--workers", "serial"]
        )
        assert (out / "good.bursts.csv").read_text() == single.read_text()

    def test_detect_many_skip_bad_records(
        self, stream_files, tmp_path, capsys
    ):
        train_path, live_path, _ = stream_files
        spec_path = tmp_path / "spec.json"
        cli_main(
            ["train", str(train_path), "--max-window", "24",
             "-o", str(spec_path)]
        )
        streams = tmp_path / "streams"
        streams.mkdir()
        lines = live_path.read_text().splitlines()
        lines[5] = "nan"
        lines[7] = "-3"
        (streams / "messy.csv").write_text("\n".join(lines) + "\n")
        out = tmp_path / "out"
        code = cli_main(
            ["detect-many", str(spec_path), str(streams),
             "-o", str(out), "--workers", "serial", "--skip-bad-records"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "skipped 2 bad record(s)" in captured.err
        assert (out / "messy.bursts.csv").exists()

    def test_detect_faults_flag_accepted(self, stream_files, tmp_path):
        # The fault policy plumbs through the CLI; a clean run under
        # "restart" is identical to the default.
        train_path, live_path, _ = stream_files
        spec_path = tmp_path / "spec.json"
        cli_main(
            ["train", str(train_path), "--max-window", "24",
             "-o", str(spec_path)]
        )
        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        code = cli_main(
            ["detect", str(spec_path), str(live_path), "-o", str(a),
             "--workers", "serial", "--faults", "restart"]
        )
        assert code == 0
        assert cli_main(
            ["detect", str(spec_path), str(live_path), "-o", str(b),
             "--workers", "serial"]
        ) == 0
        assert a.read_text() == b.read_text()
