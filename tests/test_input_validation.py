"""Input-validation tests: bad data must fail loudly, never silently.

Monotonic filtering (the entire soundness argument of the paper) assumes
non-negative data.  A negative value would not crash anything — it would
make node aggregates under-bound their shaded windows and *silently drop
bursts*, the worst possible failure mode for a detector.  So the engines
reject it at the door, and these tests pin that behaviour across every
entry point.
"""

import numpy as np
import pytest

from repro.core.chunked import ChunkedDetector
from repro.core.detector import StreamingDetector
from repro.core.sbt import shifted_binary_tree
from repro.core.thresholds import FixedThresholds
from repro.spatial import (
    SpatialDetector,
    SummedAreaTable,
    spatial_binary_structure,
)

TH = FixedThresholds({2: 100.0, 4: 200.0})


class TestStreamValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            np.array([1.0, -0.5, 2.0]),
            np.array([1.0, np.nan, 2.0]),
            np.array([1.0, np.inf]),
            np.array([-np.inf, 1.0]),
        ],
        ids=["negative", "nan", "inf", "-inf"],
    )
    def test_chunked_rejects(self, bad):
        d = ChunkedDetector(shifted_binary_tree(4), TH)
        with pytest.raises(ValueError, match="finite and non-negative"):
            d.process(bad)

    def test_streaming_rejects(self):
        d = StreamingDetector(shifted_binary_tree(4), TH)
        with pytest.raises(ValueError, match="finite and non-negative"):
            d.process(np.array([1.0, -1.0]))

    def test_preload_rejects(self):
        d = ChunkedDetector(shifted_binary_tree(4), TH)
        with pytest.raises(ValueError, match="finite and non-negative"):
            d.preload(np.array([np.nan]))

    def test_good_data_still_accepted(self):
        d = ChunkedDetector(shifted_binary_tree(4), TH)
        d.process(np.array([0.0, 1.5, 3.0]))
        d.finish()

    def test_rejected_chunk_leaves_detector_usable(self):
        d = ChunkedDetector(shifted_binary_tree(4), TH)
        d.process(np.ones(8))
        with pytest.raises(ValueError):
            d.process(np.array([-1.0]))
        # The bad chunk was rejected before ingestion: continuing works.
        d.process(np.ones(8))
        d.finish()


class TestSpatialValidation:
    def test_summed_area_table_rejects(self):
        with pytest.raises(ValueError, match="finite and non-negative"):
            SummedAreaTable(np.array([[1.0, -2.0], [0.0, 1.0]]))
        with pytest.raises(ValueError, match="finite and non-negative"):
            SummedAreaTable(np.array([[np.nan, 2.0], [0.0, 1.0]]))

    def test_spatial_detector_rejects(self):
        th = FixedThresholds({2: 100.0})
        d = SpatialDetector(spatial_binary_structure(2), th)
        with pytest.raises(ValueError, match="finite and non-negative"):
            d.detect(np.full((4, 4), -1.0))
