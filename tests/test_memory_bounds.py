"""Streaming memory bounds: detectors must not accumulate the stream.

The paper's setting is an unbounded high-speed stream; a detector whose
memory grows with stream length is wrong no matter how fast it is.  The
engines promise to retain only a bounded trailing history — these tests
process many chunks and check the retained buffers stay bounded.
"""

import numpy as np
import pytest

from repro.core.aggregates import MaxWindowEngine, SumWindowEngine
from repro.core.chunked import ChunkedDetector
from repro.core.detector import StreamingDetector
from repro.core.sbt import shifted_binary_tree
from repro.core.thresholds import NormalThresholds, all_sizes


class TestEngineRetention:
    def test_sum_engine_buffer_bounded(self, rng):
        engine = SumWindowEngine(history=64)
        sizes = []
        for _ in range(50):
            engine.append(rng.uniform(0, 5, 1000))
            sizes.append(engine._prefix.size)
        assert max(sizes) <= 64 + 1000 + 1

    def test_max_engine_buffer_bounded(self, rng):
        engine = MaxWindowEngine(history=64)
        sizes = []
        for _ in range(50):
            engine.append(rng.uniform(0, 5, 1000))
            sizes.append(engine._buf.size)
        assert max(sizes) <= 64 + 2 * 1000

    def test_queries_remain_correct_after_many_chunks(self, rng):
        data = rng.uniform(0, 5, 30_000)
        engine = SumWindowEngine(history=128)
        for lo in range(0, data.size, 1000):
            engine.append(data[lo : lo + 1000])
        t = data.size - 1
        # Prefix-sum differencing accumulates float error over the whole
        # stream; equality is up to that rounding.
        assert engine.value(t, 128) == pytest.approx(
            np.sum(data[-128:]), rel=1e-9
        )


class TestDetectorMemory:
    def _measure_engine_footprint(self, detector_cls, chunks):
        rng = np.random.default_rng(0)
        train = rng.poisson(5.0, 2000).astype(float)
        th = NormalThresholds.from_data(train, 1e-4, all_sizes(32))
        d = detector_cls(shifted_binary_tree(32), th)
        footprints = []
        for _ in range(chunks):
            d.process(rng.poisson(5.0, 2000).astype(float))
            engine = d._engine
            buf = getattr(engine, "_prefix", None)
            if buf is None:
                buf = engine._buf
            footprints.append(buf.size)
        d.finish()
        return footprints

    def test_chunked_detector_memory_bounded(self):
        footprints = self._measure_engine_footprint(ChunkedDetector, 30)
        # Footprint stabilizes: the last ten chunks add nothing.
        assert max(footprints[-10:]) <= max(footprints[:10]) + 1

    def test_streaming_detector_memory_bounded(self):
        footprints = self._measure_engine_footprint(StreamingDetector, 30)
        assert max(footprints[-10:]) <= max(footprints[:10]) + 1
