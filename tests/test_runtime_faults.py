"""Fault-tolerance tests: supervision, checkpoints, and fault injection.

The contract under test is the strongest one the runtime makes: a
supervised parallel run that loses workers mid-chunk — killed, hung,
reply dropped, or chunk corrupted — must produce *byte-identical*
bursts and operation counters to an undisturbed serial run, and must
never strand a worker process or a /dev/shm segment.  Faults are
injected deterministically via :class:`repro.runtime.FaultPlan`, so
every recovery path here is replayed on every test run, not just when
the machine happens to misbehave.
"""

import multiprocessing as mp
import os
import signal
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.aggregates import SUM
from repro.core.chunked import ChunkedDetector, initial_carry
from repro.core.multi import MultiStreamDetector
from repro.core.sbt import shifted_binary_tree
from repro.core.thresholds import NormalThresholds, all_sizes
from repro.runtime import (
    Fault,
    FaultPlan,
    ParallelMultiStreamDetector,
    SupervisorPolicy,
    WorkerError,
    WorkerPool,
    WorkerTimeout,
    WorkerUnrecoverable,
)

needs_dev_shm = pytest.mark.skipif(
    not Path("/dev/shm").is_dir(), reason="POSIX shared memory not mounted"
)
needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="monkeypatched worker target needs fork inheritance",
)

#: Short deadlines so hang faults resolve in ~a second, not a minute.
FAST = SupervisorPolicy(
    deadline=2.0, term_grace=0.5, backoff_base=0.01, backoff_cap=0.05
)
NO_RESTARTS = SupervisorPolicy(
    deadline=2.0,
    term_grace=0.5,
    max_restarts=0,
    backoff_base=0.01,
    backoff_cap=0.05,
)

CHUNK = 250  # ~4 supervised rounds over the fixture streams


def _shm_segments() -> set:
    return set(os.listdir("/dev/shm"))


def assert_counters_equal(a, b):
    assert np.array_equal(a.updates, b.updates)
    assert np.array_equal(a.filter_comparisons, b.filter_comparisons)
    assert np.array_equal(a.alarms, b.alarms)
    assert np.array_equal(a.search_cells, b.search_cells)
    assert a.bursts == b.bursts


@pytest.fixture
def streams(rng):
    # Ragged lengths: the last round is partial for some streams only.
    return {
        "a": rng.poisson(5.0, 1000).astype(float),
        "b": rng.poisson(9.0, 870).astype(float),
        "c": rng.exponential(4.0, 930),
        "d": rng.poisson(2.0, 640).astype(float),
    }


@pytest.fixture
def setup(rng):
    train = rng.poisson(7.0, 1200).astype(float)
    thresholds = NormalThresholds.from_data(train, 1e-3, all_sizes(16))
    return shifted_binary_tree(16), thresholds


@pytest.fixture
def expected(streams, setup):
    structure, thresholds = setup
    serial = MultiStreamDetector.shared(streams, structure, thresholds)
    return serial.detect(streams, chunk_size=CHUNK), serial


def run_with_plan(streams, setup, plan, faults="restart", policy=FAST):
    structure, thresholds = setup
    fleet = ParallelMultiStreamDetector.shared(
        streams,
        structure,
        thresholds,
        workers=2,
        faults=faults,
        supervision=policy,
        fault_plan=plan,
    )
    with fleet:
        got = fleet.detect(streams, chunk_size=CHUNK)
    return got, fleet, fleet.total_restarts


def assert_identical(streams, got, fleet, expected):
    want, serial = expected
    for name in streams:
        assert tuple(got[name]) == tuple(want[name]), name
        assert_counters_equal(
            fleet.counters(name), serial.detector(name).counters
        )
    assert_counters_equal(fleet.merged_counters(), serial.merged_counters())


# ---------------------------------------------------------------------------
# Checkpoint carries (the state the supervisor replays from)
# ---------------------------------------------------------------------------

class TestDetectorCarry:
    def test_resume_matches_uninterrupted(self, rng, setup):
        structure, thresholds = setup
        stream = rng.poisson(6.0, 700).astype(float)

        ref = ChunkedDetector(structure, thresholds)
        want = [b for lo in range(0, 700, 100) for b in ref.process(stream[lo : lo + 100])]
        want += ref.finish()

        # Process three chunks, checkpoint, continue on a fresh detector
        # built from the carry — as the supervisor does after a crash.
        first = ChunkedDetector(structure, thresholds)
        got = [b for lo in (0, 100, 200) for b in first.process(stream[lo : lo + 100])]
        resumed = ChunkedDetector.from_carry(
            structure, thresholds, first.carry()
        )
        got += [
            b
            for lo in range(300, 700, 100)
            for b in resumed.process(stream[lo : lo + 100])
        ]
        got += resumed.finish()

        assert got == want
        assert_counters_equal(resumed.counters, ref.counters)

    def test_initial_carry_is_a_fresh_detector(self, rng, setup):
        structure, thresholds = setup
        stream = rng.poisson(6.0, 300).astype(float)
        ref = ChunkedDetector(structure, thresholds)
        restored = ChunkedDetector.from_carry(
            structure, thresholds, initial_carry(structure, SUM)
        )
        assert restored.detect(stream) == ref.detect(stream)

    def test_restore_rejected_after_processing(self, rng, setup):
        structure, thresholds = setup
        det = ChunkedDetector(structure, thresholds)
        carry = det.carry()
        det.process(rng.poisson(5.0, 50).astype(float))
        with pytest.raises(RuntimeError, match="must precede"):
            det.restore_carry(carry)

    def test_carry_rejected_after_finish(self, setup):
        structure, thresholds = setup
        det = ChunkedDetector(structure, thresholds)
        det.finish()
        with pytest.raises(RuntimeError, match="finished"):
            det.carry()


# ---------------------------------------------------------------------------
# Restart policy: every fault kind must be invisible in the output
# ---------------------------------------------------------------------------

@needs_dev_shm
class TestRestartPolicy:
    @pytest.mark.parametrize(
        "kind, round_index",
        [
            ("kill", 0),
            ("kill", 2),
            ("hang", 1),
            ("hang_hard", 1),
            ("drop_reply", 2),
        ],
    )
    def test_worker_fault_byte_identical(
        self, streams, setup, expected, kind, round_index
    ):
        before = _shm_segments()
        plan = FaultPlan.single(kind, round_index, worker=0)
        got, fleet, restarts = run_with_plan(streams, setup, plan)
        assert_identical(streams, got, fleet, expected)
        # The fault genuinely fired and cost a process.
        assert restarts >= 1
        assert not fleet.degraded
        assert _shm_segments() - before == set()

    def test_corrupt_chunk_rewritten_not_restarted(
        self, streams, setup, expected
    ):
        before = _shm_segments()
        plan = FaultPlan.single("corrupt", 1, stream="b")
        got, fleet, restarts = run_with_plan(streams, setup, plan)
        assert_identical(streams, got, fleet, expected)
        # Checksum failure keeps the worker alive: rewrite and resend.
        assert restarts == 0
        assert _shm_segments() - before == set()

    def test_multi_fault_plan(self, streams, setup, expected):
        plan = FaultPlan(
            (
                Fault("kill", 0, worker=1),
                Fault("corrupt", 1, stream="c"),
                Fault("drop_reply", 2, worker=0),
            )
        )
        got, fleet, restarts = run_with_plan(streams, setup, plan)
        assert_identical(streams, got, fleet, expected)
        assert restarts >= 2

    @pytest.mark.parametrize("seed", [0, 1])
    def test_seeded_random_plans(self, streams, setup, expected, seed):
        plan_rng = np.random.default_rng([99, seed])
        plan = FaultPlan.random(
            plan_rng, n_workers=2, n_rounds=4, streams=tuple(streams)
        )
        before = _shm_segments()
        got, fleet, _ = run_with_plan(streams, setup, plan)
        assert_identical(streams, got, fleet, expected)
        assert _shm_segments() - before == set()

    def test_injection_without_supervision_is_caught(
        self, streams, setup
    ):
        # faults="raise" + a plan: the default policy stays fail-fast,
        # surfacing the injected crash instead of healing it.
        plan = FaultPlan.single("kill", 1, worker=0)
        structure, thresholds = setup
        before = _shm_segments()
        fleet = ParallelMultiStreamDetector.shared(
            streams,
            structure,
            thresholds,
            workers=2,
            fault_plan=plan,
        )
        assert fleet.faults == "raise"
        with pytest.raises(WorkerError):
            fleet.detect(streams, chunk_size=CHUNK)
        assert fleet._closed
        assert _shm_segments() - before == set()


# ---------------------------------------------------------------------------
# Degrade policy: a collapsed pool folds back to serial mid-run
# ---------------------------------------------------------------------------

@needs_dev_shm
class TestDegradePolicy:
    @pytest.mark.parametrize("kind", ["kill", "drop_reply"])
    def test_degrades_and_stays_byte_identical(
        self, streams, setup, expected, kind
    ):
        before = _shm_segments()
        plan = FaultPlan.single(kind, 1, worker=0)
        got, fleet, _ = run_with_plan(
            streams, setup, plan, faults="degrade", policy=NO_RESTARTS
        )
        assert fleet.degraded  # the pool really collapsed
        assert_identical(streams, got, fleet, expected)
        assert _shm_segments() - before == set()

    def test_restart_budget_spares_degrade(self, streams, setup, expected):
        # With restarts available, degrade mode heals like restart mode
        # and never falls back.
        plan = FaultPlan.single("kill", 1, worker=0)
        got, fleet, restarts = run_with_plan(
            streams, setup, plan, faults="degrade"
        )
        assert not fleet.degraded
        assert restarts >= 1
        assert_identical(streams, got, fleet, expected)

    def test_unknown_policy_rejected(self, streams, setup):
        structure, thresholds = setup
        with pytest.raises(ValueError, match="faults must be one of"):
            ParallelMultiStreamDetector.shared(
                streams, structure, thresholds, workers=2, faults="retry"
            )


# ---------------------------------------------------------------------------
# Budget exhaustion and application errors under supervision
# ---------------------------------------------------------------------------

@needs_dev_shm
class TestSupervisionLimits:
    def test_exhausted_budget_raises_unrecoverable(self, streams, setup):
        structure, thresholds = setup
        plan = FaultPlan.single("kill", 1, worker=0)
        before = _shm_segments()
        fleet = ParallelMultiStreamDetector.shared(
            streams,
            structure,
            thresholds,
            workers=2,
            faults="restart",
            supervision=NO_RESTARTS,
            fault_plan=plan,
        )
        with pytest.raises(WorkerUnrecoverable, match="worker 0"):
            fleet.detect(streams, chunk_size=CHUNK)
        assert fleet._closed
        assert _shm_segments() - before == set()

    def test_application_error_not_retried(self, streams, setup):
        # Deterministic remote exceptions must fail fast even under
        # supervision — retrying them would mask bugs.
        structure, thresholds = setup
        fleet = ParallelMultiStreamDetector.shared(
            streams,
            structure,
            thresholds,
            workers=2,
            faults="restart",
            supervision=FAST,
        )
        with pytest.raises(WorkerError, match="non-negative"):
            fleet.process({"a": np.array([1.0, -5.0, 2.0])})
        # The error shut the fleet down instead of entering recovery.
        assert fleet._closed


# ---------------------------------------------------------------------------
# Deadline-aware receives (the hang-forever regression)
# ---------------------------------------------------------------------------

class TestRecvDeadline:
    def test_pool_default_timeout(self):
        # A live worker with nothing to say must not hang the parent:
        # the pool-wide deadline turns silence into a typed error.
        with WorkerPool(1, recv_timeout=0.3) as pool:
            with pytest.raises(WorkerTimeout, match="alive but stuck"):
                pool.recv(0)
            assert pool.alive(0)  # diagnosis, not escalation

    def test_per_call_timeout_overrides_pool_default(self):
        with WorkerPool(1) as pool:  # legacy pool: no default deadline
            with pytest.raises(WorkerTimeout):
                pool.recv(0, timeout=0.3)


# ---------------------------------------------------------------------------
# Shutdown escalation
# ---------------------------------------------------------------------------

def _stubborn_worker(conn, worker_id):
    """A worker that ignores stop commands and masks SIGTERM.

    Sends one readiness reply so the parent can wait until the mask is
    actually installed — terminating earlier would race process startup
    and let plain SIGTERM win.
    """
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    conn.send(("ready",))
    while True:
        time.sleep(600)


def _await_ready(pool):
    for w in range(pool.num_workers):
        assert pool.recv(w, timeout=10.0) == ("ready",)


class TestCloseEscalation:
    def test_clean_close_stops_workers(self):
        pool = WorkerPool(2)
        procs = list(pool._procs)
        pool.close()
        assert all(not p.is_alive() for p in procs)
        # Cooperative stop, not a kill.
        assert all(p.exitcode == 0 for p in procs)

    @needs_fork
    def test_close_kills_stop_ignoring_worker(self, monkeypatch):
        import repro.runtime.pool as pool_mod

        monkeypatch.setattr(pool_mod, "worker_main", _stubborn_worker)
        pool = WorkerPool(2)
        procs = list(pool._procs)
        _await_ready(pool)
        pool.close(join_timeout=0.3)
        # stop ignored, SIGTERM masked: only SIGKILL gets them down.
        assert all(not p.is_alive() for p in procs)
        assert all(p.exitcode == -signal.SIGKILL for p in procs)

    @needs_fork
    def test_ensure_dead_escalates_to_kill(self, monkeypatch):
        import repro.runtime.pool as pool_mod

        monkeypatch.setattr(pool_mod, "worker_main", _stubborn_worker)
        pool = WorkerPool(1)
        try:
            victim = pool._procs[0]
            _await_ready(pool)
            pool.ensure_dead(0, grace=0.2)
            assert not victim.is_alive()
            assert victim.exitcode == -signal.SIGKILL
        finally:
            pool.close(join_timeout=0.3)

    def test_restart_replaces_dead_worker(self):
        with WorkerPool(2) as pool:
            old = pool._procs[0]
            old.kill()
            old.join(timeout=10.0)
            assert not pool.alive(0)
            pool.restart(0)
            assert pool.alive(0)
            assert pool._procs[0] is not old
            assert pool.num_workers == 2
            assert pool.alive(1)  # the other worker was left alone
