"""Overload-layer tests: hysteresis, accountable shedding, stats, CLI.

Two kinds of guarantees are under test.  The *unit* half proves the
no-thrash properties of :class:`OverloadDetector` on synthetic latency
sequences (pure arithmetic — no sleeping, no workers).  The
*differential* half injects deterministic ``delay`` faults into a real
worker pool and checks each shedding policy's contract against an
undisturbed serial run: ``none`` and ``widen_chunks`` byte-identical
(bursts *and* counters), ``sample_streams`` accountable to the point
(level-0 updates reconcile exactly against the report's drop ledger),
``coarsen_sat`` burst-identical with every swap on the books.
"""

import numpy as np
import pytest

from repro.__main__ import main as cli_main
from repro.core.multi import MultiStreamDetector
from repro.core.sbt import shifted_binary_tree
from repro.core.thresholds import NormalThresholds, all_sizes
from repro.runtime import (
    Fault,
    FaultPlan,
    OverloadConfig,
    OverloadDetector,
    ParallelMultiStreamDetector,
    SheddingReport,
    SupervisorPolicy,
    coarsen_structure,
)
from repro.runtime.overload import (
    SHEDDING_POLICIES,
    RuntimeStats,
    ShedAction,
    ShedPlanner,
    latency_percentiles,
)

from test_runtime_faults import (
    CHUNK,
    FAST,
    assert_counters_equal,
    needs_dev_shm,
)

#: Trips on the first delayed round and recovers within a round or two:
#: the injected 0.25s straggler waits are measured in >= 0.1s poll
#: increments, an order of magnitude above `enter`, while undisturbed
#: rounds observe ~0 and pull the aggressive EMA straight back down.
AGGRESSIVE = OverloadConfig(
    enter_latency=0.05,
    exit_latency=0.045,
    ema_alpha=0.9,
    min_dwell_rounds=1,
)

DELAY_EARLY = FaultPlan(
    (
        Fault("delay", 0, worker=0, seconds=0.25),
        Fault("delay", 0, worker=1, seconds=0.25),
    )
)


@pytest.fixture
def streams(rng):
    return {
        "a": rng.poisson(5.0, 1000).astype(float),
        "b": rng.poisson(9.0, 870).astype(float),
        "c": rng.exponential(4.0, 930),
        "d": rng.poisson(2.0, 640).astype(float),
    }


@pytest.fixture
def setup(rng):
    train = rng.poisson(7.0, 1200).astype(float)
    thresholds = NormalThresholds.from_data(train, 1e-3, all_sizes(16))
    return shifted_binary_tree(16), thresholds


@pytest.fixture
def expected(streams, setup):
    structure, thresholds = setup
    serial = MultiStreamDetector.shared(streams, structure, thresholds)
    return serial.detect(streams, chunk_size=CHUNK), serial


def run_shedding(
    streams,
    setup,
    shedding,
    plan=DELAY_EARLY,
    config=AGGRESSIVE,
    chunk=CHUNK,
):
    structure, thresholds = setup
    fleet = ParallelMultiStreamDetector.shared(
        streams,
        structure,
        thresholds,
        workers=2,
        faults="restart",
        supervision=FAST,
        fault_plan=plan,
        shedding=shedding,
        overload=config,
    )
    with fleet:
        got = fleet.detect(streams, chunk_size=chunk)
    return got, fleet


# ---------------------------------------------------------------------------
# OverloadDetector: hysteresis + dwell (pure unit tests)
# ---------------------------------------------------------------------------

class TestOverloadDetector:
    def test_first_sample_seeds_the_ema(self):
        det = OverloadDetector(OverloadConfig())
        assert det.ema == 0.0
        det.observe(0.8)
        assert det.ema == pytest.approx(0.8)

    def test_enter_then_exit_through_the_band(self):
        cfg = OverloadConfig(
            enter_latency=1.0,
            exit_latency=0.5,
            ema_alpha=1.0,
            min_dwell_rounds=1,
        )
        det = OverloadDetector(cfg)
        assert det.observe(2.0) is True  # >= enter
        assert det.observe(0.6) is True  # inside the band: holds state
        assert det.observe(0.4) is False  # <= exit
        assert det.transitions == 2
        assert det.overloaded_rounds == 2

    def test_oscillation_within_band_never_transitions(self):
        # x alternates 0.2 / 1.4 with alpha=0.5: the EMA converges to the
        # 0.6 <-> 1.0 cycle, which never reaches enter=1.05 nor exit=0.5,
        # so hysteresis alone (dwell=1) must hold the state forever.
        cfg = OverloadConfig(
            enter_latency=1.05,
            exit_latency=0.5,
            ema_alpha=0.5,
            min_dwell_rounds=1,
        )
        det = OverloadDetector(cfg)
        for i in range(1000):
            det.observe(0.2 if i % 2 == 0 else 1.4)
        assert det.transitions == 0
        assert not det.overloaded

    def test_transition_rate_bounded_by_dwell(self):
        # Worst-case adversary: raw samples slam across both thresholds
        # every round (alpha=1 makes the EMA track them exactly).  The
        # dwell gate alone must cap the flip rate at 1 per dwell rounds.
        cfg = OverloadConfig(
            enter_latency=1.0,
            exit_latency=0.5,
            ema_alpha=1.0,
            min_dwell_rounds=3,
        )
        det = OverloadDetector(cfg)
        rounds = 999
        for i in range(rounds):
            det.observe(10.0 if i % 2 == 0 else 0.0)
        assert det.transitions <= rounds // cfg.min_dwell_rounds
        assert det.transitions >= 2  # but it does move eventually
        assert det.rounds == rounds

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            OverloadDetector().observe(-0.1)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"enter_latency": 0.0}, "enter_latency"),
            ({"exit_latency": 2.0}, "exit"),  # >= enter
            ({"exit_latency": 0.0}, "exit"),
            ({"ema_alpha": 0.0}, "ema_alpha"),
            ({"ema_alpha": 1.5}, "ema_alpha"),
            ({"min_dwell_rounds": 0}, "min_dwell_rounds"),
            ({"widen_factor": 1}, "widen_factor"),
            ({"sample_fraction": 1.0}, "sample_fraction"),
        ],
    )
    def test_config_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            OverloadConfig(**kwargs)


# ---------------------------------------------------------------------------
# SheddingReport: the accounting ledger
# ---------------------------------------------------------------------------

class TestSheddingReport:
    def test_totals_split_by_action_kind(self):
        rep = SheddingReport("sample_streams")
        rep.record(ShedAction("sample_streams", "drop", 3, "a", points=250))
        rep.record(ShedAction("sample_streams", "drop", 4, "b", points=120))
        rep.record(ShedAction("widen_chunks", "defer", 5, "a", points=80))
        rep.record(ShedAction("coarsen_sat", "coarsen", 6, "a"))
        rep.record(ShedAction("coarsen_sat", "coarsen", 7, "a"))
        assert rep.dropped_points == 370
        assert rep.deferred_points == 80
        assert rep.coarsened_streams == 1  # distinct streams, not events
        assert len(rep.actions) == 5
        d = rep.as_dict()
        assert d["dropped_points"] == 370
        assert "dropped=370" in rep.summary()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown shedding policy"):
            SheddingReport("drop_everything")
        with pytest.raises(ValueError, match="unknown shedding policy"):
            ShedPlanner("drop_everything")

    def test_action_rendering(self):
        act = ShedAction("sample_streams", "drop", 2, "b", points=9, detail="x")
        assert str(act) == "drop@r2[b] points=9 (x)"

    def test_policy_ladder_is_exported(self):
        assert SHEDDING_POLICIES == (
            "none",
            "widen_chunks",
            "sample_streams",
            "coarsen_sat",
        )


class TestCoarsenStructure:
    def test_preserves_top_and_coverage(self):
        fine = shifted_binary_tree(16)
        coarse = coarsen_structure(fine)
        assert coarse.num_levels == 1
        assert coarse.top == fine.top
        assert coarse.coverage == fine.coverage
        # Identical history requirement is what legalises the mid-run
        # carry/from_carry swap in both directions.
        assert (
            coarse.top.size + coarse.top.shift
            == fine.top.size + fine.top.shift
        )

    def test_already_flat_structures_pass_through(self):
        flat = coarsen_structure(shifted_binary_tree(16))
        assert coarsen_structure(flat) is flat


class TestLatencyPercentiles:
    def test_empty_is_zero(self):
        assert latency_percentiles(()) == (0.0, 0.0)

    def test_percentiles_ordered(self):
        p50, p99 = latency_percentiles(tuple(float(i) for i in range(100)))
        assert 0.0 < p50 < p99


# ---------------------------------------------------------------------------
# Differential: each policy's contract under injected stragglers
# ---------------------------------------------------------------------------

@needs_dev_shm
class TestSheddingPolicies:
    def test_none_is_byte_identical_and_sheds_nothing(
        self, streams, setup, expected
    ):
        got, fleet = run_shedding(streams, setup, "none")
        want, serial = expected
        for name in streams:
            assert tuple(got[name]) == tuple(want[name]), name
            assert_counters_equal(
                fleet.counters(name), serial.detector(name).counters
            )
        s = fleet.stats()
        assert s.overloaded_rounds >= 1  # the stragglers were seen...
        assert s.shed_actions == 0  # ...but nothing was shed
        assert s.dropped_points == 0
        assert s.deferred_points == 0
        assert fleet.shedding == "none"

    def test_widen_chunks_is_lossless(self, streams, setup, expected):
        got, fleet = run_shedding(streams, setup, "widen_chunks")
        want, serial = expected
        # Chunk-partition invariance: batching deferred chunks into one
        # wide chunk changes IPC shape only — bursts AND counters match.
        for name in streams:
            assert tuple(got[name]) == tuple(want[name]), name
            assert_counters_equal(
                fleet.counters(name), serial.detector(name).counters
            )
        rep = fleet.shedding_report()
        assert rep.deferred_points > 0
        assert rep.dropped_points == 0
        flushed = sum(
            a.points for a in rep.actions if a.action == "flush"
        )
        assert flushed >= rep.deferred_points  # every deferral flushed

    def test_sample_streams_accounts_for_every_dropped_point(
        self, streams, setup, expected
    ):
        got, fleet = run_shedding(streams, setup, "sample_streams")
        _, serial = expected
        rep = fleet.shedding_report()
        assert rep.dropped_points > 0
        dropped = {name: 0 for name in streams}
        for act in rep.actions:
            assert act.action == "drop"
            dropped[act.stream] += act.points
        # Exact reconciliation: every point is either ingested (one
        # level-0 update each) or on the drop ledger — no third fate.
        for name, data in streams.items():
            ingested = fleet.counters(name).updates[0]
            assert ingested == data.size - dropped[name], name
        assert fleet.stats().dropped_points == sum(dropped.values())

    def test_coarsen_sat_finds_identical_bursts(
        self, streams, setup, expected
    ):
        # Smaller chunks -> more rounds, so the run both coarsens under
        # load and restores the trained structures after recovery.
        got, fleet = run_shedding(streams, setup, "coarsen_sat", chunk=125)
        want, _ = expected
        # Structure affects cost only, never which windows alarm: the
        # swap lands on aligned stream positions (swap_alignment), so
        # the coarse run reports exactly the same (end, size) windows.
        # Emission order may interleave differently around a swap, and
        # burst *values* are the same sums re-associated through a
        # different tree decomposition — so compare the window sets
        # exactly and the values to FP tolerance.
        key = lambda b: (b.end, b.size)  # noqa: E731
        for name in streams:
            g = sorted(got[name], key=key)
            w = sorted(want[name], key=key)
            assert [key(b) for b in g] == [key(b) for b in w], name
            assert np.allclose(
                [b.value for b in g], [b.value for b in w]
            ), name
        rep = fleet.shedding_report()
        kinds = {a.action for a in rep.actions}
        assert kinds <= {"coarsen", "restore"}
        assert "coarsen" in kinds
        assert "restore" in kinds
        assert rep.coarsened_streams == len(streams)
        assert rep.dropped_points == 0

    def test_rejects_unknown_policy(self, streams, setup):
        structure, thresholds = setup
        with pytest.raises(ValueError, match="shedding must be one of"):
            ParallelMultiStreamDetector.shared(
                streams, structure, thresholds, shedding="yolo"
            )


# ---------------------------------------------------------------------------
# stats(): one snapshot, valid at every point of the lifecycle
# ---------------------------------------------------------------------------

@needs_dev_shm
class TestRuntimeStats:
    def test_serial_backend_snapshot(self, streams, setup):
        structure, thresholds = setup
        det = ParallelMultiStreamDetector.shared(
            streams, structure, thresholds, workers="serial"
        )
        s = det.stats()
        assert isinstance(s, RuntimeStats)
        assert s.backend == "serial"
        assert s.workers == 0
        assert not s.overloaded
        assert "backend=serial" in s.describe()

    def test_parallel_snapshot_survives_close(self, streams, setup):
        got, fleet = run_shedding(streams, setup, "none")
        s = fleet.stats()  # after the `with` block: pool closed
        assert s.backend == "parallel"
        assert s.workers == 2
        assert s.latency_p99 >= s.latency_p50 >= 0.0
        assert s.latency_p99 > 0.0  # the injected stragglers are visible
        assert s.max_inflight >= 1
        desc = s.describe()
        for token in ("backend=parallel", "shed=none", "restarts=0"):
            assert token in desc
        assert s.as_dict()["workers"] == 2

    def test_degrade_keeps_restart_and_degraded_diagnostics(
        self, streams, setup, expected
    ):
        # One restart is spent on the first kill; the second kill
        # exhausts the budget and folds the run back to serial.  The
        # diagnostics must survive both the fold-back and close().
        policy = SupervisorPolicy(
            deadline=2.0,
            term_grace=0.5,
            max_restarts=1,
            backoff_base=0.01,
            backoff_cap=0.05,
        )
        plan = FaultPlan(
            (Fault("kill", 0, worker=0), Fault("kill", 1, worker=0))
        )
        structure, thresholds = setup
        fleet = ParallelMultiStreamDetector.shared(
            streams,
            structure,
            thresholds,
            workers=2,
            faults="degrade",
            supervision=policy,
            fault_plan=plan,
            shedding="none",
            overload=AGGRESSIVE,
        )
        with fleet:
            got = fleet.detect(streams, chunk_size=CHUNK)
        want, serial = expected
        for name in streams:
            assert tuple(got[name]) == tuple(want[name]), name
            assert_counters_equal(
                fleet.counters(name), serial.detector(name).counters
            )
        assert fleet.degraded
        assert fleet.total_restarts == 1
        s = fleet.stats()
        assert s.degraded
        assert s.total_restarts == 1
        assert s.backend == "parallel"  # how the run *started*
        assert "degraded=yes" in s.describe()
        assert "restarts=1" in s.describe()


# ---------------------------------------------------------------------------
# CLI: the tier-1 smoke for the new knobs
# ---------------------------------------------------------------------------

class TestOverloadCLI:
    @pytest.fixture
    def spec_and_stream(self, tmp_path, rng):
        train = tmp_path / "train.csv"
        live = tmp_path / "live.csv"
        np.savetxt(train, rng.poisson(8.0, 900).astype(float))
        np.savetxt(live, rng.poisson(8.0, 1200).astype(float))
        spec = tmp_path / "spec.json"
        cli_main(
            ["train", str(train), "--max-window", "16", "-o", str(spec)]
        )
        return spec, live

    def test_detect_accepts_overload_flags_and_reports_stats(
        self, spec_and_stream, tmp_path, capsys
    ):
        spec, live = spec_and_stream
        out = tmp_path / "bursts.csv"
        cli_main(
            [
                "detect",
                str(spec),
                str(live),
                "-o",
                str(out),
                "--shedding",
                "widen_chunks",
                "--overload-enter",
                "0.5",
                "--overload-exit",
                "0.2",
                "--overload-dwell",
                "2",
            ]
        )
        err = capsys.readouterr().err
        assert "# stats: " in err
        assert "shed=widen_chunks" in err

    def test_detect_defaults_still_report_stats(
        self, spec_and_stream, tmp_path, capsys
    ):
        spec, live = spec_and_stream
        cli_main(
            ["detect", str(spec), str(live), "-o", str(tmp_path / "b.csv")]
        )
        err = capsys.readouterr().err
        assert "# stats: " in err
        assert "shed=none" in err

    def test_invalid_band_is_a_clean_cli_error(
        self, spec_and_stream, tmp_path, capsys
    ):
        spec, live = spec_and_stream
        with pytest.raises(SystemExit):
            cli_main(
                [
                    "detect",
                    str(spec),
                    str(live),
                    "-o",
                    str(tmp_path / "b.csv"),
                    "--overload-enter",
                    "0.1",
                    "--overload-exit",
                    "0.9",
                ]
            )
