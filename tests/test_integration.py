"""Integration tests: the full pipeline across data regimes.

These tests run the complete train-thresholds / search-structure /
detect pipeline on every stream family the experiments use and check the
paper's core claims at test scale: exact agreement with the naive oracle,
planted bursts recovered, and the trained SAT at least matching the SBT's
cost in the regimes the paper highlights.
"""

import numpy as np
import pytest

from repro.core.chunked import ChunkedDetector
from repro.core.naive import naive_detect
from repro.core.sbt import shifted_binary_tree
from repro.core.search import train_structure
from repro.core.thresholds import (
    EmpiricalThresholds,
    NormalThresholds,
    all_sizes,
    stepped_sizes,
)
from repro.streams.bmodel import b_model_series
from repro.streams.generators import (
    exponential_stream,
    planted_burst_stream,
    poisson_stream,
)
from repro.streams.sdss import SDSSTrafficSimulator
from repro.streams.taq import TAQVolumeSimulator


def pipeline(train, data, p, sizes):
    th = NormalThresholds.from_data(train, p, sizes)
    structure = train_structure(train, th)
    detector = ChunkedDetector(structure, th)
    bursts = detector.detect(data)
    return th, structure, detector, bursts


class TestEndToEndAgreement:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: poisson_stream(5.0, 12_000, seed=1),
            lambda: exponential_stream(20.0, 12_000, seed=2),
            lambda: b_model_series(3e5, 14, bias=0.75, seed=3),
            lambda: SDSSTrafficSimulator(seed=4).generate(12_000),
            lambda: TAQVolumeSimulator(seed=5).generate(
                12_000, start_second=int(9.5 * 3600)
            ),
        ],
        ids=["poisson", "exponential", "bmodel", "sdss", "taq"],
    )
    def test_trained_sat_equals_naive(self, make):
        data = make()
        train = data[:4000]
        th, structure, _, bursts = pipeline(
            train, data, 1e-4, all_sizes(60)
        )
        assert bursts == naive_detect(data, th)

    def test_stepped_sizes_pipeline(self):
        data = poisson_stream(8.0, 10_000, seed=6)
        th = NormalThresholds.from_data(
            data[:3000], 1e-4, stepped_sizes(5, 100)
        )
        structure = train_structure(data[:3000], th)
        got = ChunkedDetector(structure, th).detect(data)
        assert got == naive_detect(data, th)

    def test_empirical_thresholds_pipeline(self):
        data = exponential_stream(10.0, 10_000, seed=7)
        th = EmpiricalThresholds(data[:4000], 1e-3, all_sizes(40))
        structure = train_structure(data[:4000], th)
        got = ChunkedDetector(structure, th).detect(data)
        assert got == naive_detect(data, th)


class TestPlantedBurstRecall:
    def test_planted_bursts_are_detected(self):
        background = poisson_stream(5.0, 20_000, seed=8)
        injections = [(5_000, 20, 30.0), (12_000, 50, 20.0), (18_000, 5, 80.0)]
        data, applied = planted_burst_stream(background, injections)
        th, structure, _, bursts = pipeline(
            background[:5_000], data, 1e-6, all_sizes(64)
        )
        ends = set(bursts.ends())
        for start, width, _extra in applied:
            covered = any(
                start <= end < start + width + 64 for end in ends
            )
            assert covered, f"injected burst at {start} missed"

    def test_no_bursts_in_quiet_stream(self):
        data = poisson_stream(5.0, 20_000, seed=9)
        th = NormalThresholds(5.0, np.sqrt(5.0), 1e-9, all_sizes(64))
        structure = train_structure(data[:5_000], th)
        bursts = ChunkedDetector(structure, th).detect(data)
        # p = 1e-9 over ~1.3M (t, w) pairs: expect essentially none.
        assert len(bursts) <= 2


class TestPaperShapeClaims:
    def test_sat_beats_sbt_on_exponential_rare_bursts(self):
        # The paper's headline regime (Fig. 15): exponential data, rare
        # bursts -> the adapted structure must clearly beat the SBT.
        train = exponential_stream(100.0, 8_000, seed=10)
        data = exponential_stream(100.0, 40_000, seed=11)
        th = NormalThresholds.from_data(train, 1e-7, all_sizes(128))
        sat = train_structure(train, th)
        sbt = shifted_binary_tree(128)
        d_sat = ChunkedDetector(sat, th)
        d_sat.detect(data)
        d_sbt = ChunkedDetector(sbt, th)
        d_sbt.detect(data)
        assert (
            d_sat.counters.total_operations
            < 0.5 * d_sbt.counters.total_operations
        )

    def test_both_far_below_naive(self):
        train = poisson_stream(1.0, 8_000, seed=12)
        data = poisson_stream(1.0, 40_000, seed=13)
        th = NormalThresholds.from_data(train, 1e-6, all_sizes(128))
        sat = train_structure(train, th)
        d = ChunkedDetector(sat, th)
        d.detect(data)
        from repro.core.naive import naive_operation_count

        naive_ops = naive_operation_count(data.size, 128)
        assert d.counters.total_operations < naive_ops / 5

    def test_cost_ratio_stable_across_stream_length(self):
        # The scale-invariance DESIGN.md relies on: SAT/SBT op ratios are
        # about the same at 20k and at 60k points.
        train = exponential_stream(50.0, 8_000, seed=14)
        th = NormalThresholds.from_data(train, 1e-5, all_sizes(64))
        sat = train_structure(train, th)
        sbt = shifted_binary_tree(64)
        ratios = []
        for n, seed in ((20_000, 15), (60_000, 16)):
            data = exponential_stream(50.0, n, seed=seed)
            d1 = ChunkedDetector(sat, th)
            d1.detect(data)
            d2 = ChunkedDetector(sbt, th)
            d2.detect(data)
            ratios.append(
                d2.counters.total_operations / d1.counters.total_operations
            )
        assert ratios[0] == pytest.approx(ratios[1], rel=0.35)

    def test_detection_latency_bound(self):
        # Paper §3.2: a burst is reported no later than s_top points
        # after it occurs — process() + finish() chunk boundaries must
        # respect that in the incremental API.
        data = np.zeros(1000)
        data[500:510] = 100.0
        th = NormalThresholds(0.1, 1.0, 1e-6, all_sizes(32))
        structure = shifted_binary_tree(32)
        detector = ChunkedDetector(structure, th)
        found_at = None
        for lo in range(0, 1000, 50):
            out = detector.process(data[lo : lo + 50])
            if out and found_at is None:
                found_at = lo + 50
        detector.finish()
        assert found_at is not None
        # The injected burst ends by t=509; the covering chunk ends at
        # 550, well within s_top = 32 of the relevant node boundary.
        assert found_at <= 550
