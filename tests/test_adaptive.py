"""Tests for adaptive detection over time-evolving streams."""

import time

import numpy as np
import pytest

from repro.core.adaptive import (
    AdaptiveConfig,
    AdaptiveDetector,
    DriftMonitor,
    InlineRetrainer,
    ProcessRetrainer,
)
from repro.core.chunked import ChunkedDetector
from repro.core.events import BurstSet
from repro.core.naive import naive_detect
from repro.core.search import SearchParams, train_structure
from repro.core.thresholds import NormalThresholds, all_sizes
from repro.streams.generators import exponential_stream, poisson_stream

FAST_SEARCH = SearchParams(
    max_same_size_states=64, max_final_states=500, max_expansions=2_000
)


def drifting_stream(n_each, seed=0):
    """Exponential stream whose scale jumps by 12x halfway through."""
    a = exponential_stream(10.0, n_each, seed=seed)
    b = exponential_stream(120.0, n_each, seed=seed + 1)
    return np.concatenate((a, b))


class TestDriftMonitor:
    def test_no_drift_on_same_distribution(self, rng):
        data = rng.poisson(10.0, 50_000).astype(float)
        monitor = DriftMonitor(10.0, np.sqrt(10.0), tolerance=0.3)
        monitor.observe(data)
        assert not monitor.drifted()

    def test_detects_mean_shift(self, rng):
        monitor = DriftMonitor(10.0, np.sqrt(10.0), tolerance=0.3)
        monitor.observe(rng.poisson(20.0, 20_000).astype(float))
        assert monitor.drifted()

    def test_detects_scale_shift(self, rng):
        monitor = DriftMonitor(10.0, 10.0, tolerance=0.3)
        monitor.observe(rng.exponential(10.0, 20_000) * 3)
        assert monitor.drifted()

    def test_reset(self, rng):
        monitor = DriftMonitor(10.0, 3.0, tolerance=0.3)
        monitor.observe(rng.poisson(30.0, 5_000).astype(float))
        assert monitor.drifted()
        monitor.reset(30.0, np.sqrt(30.0))
        assert not monitor.drifted()
        assert monitor.observed_points == 0

    def test_empty_monitor_not_drifted(self):
        monitor = DriftMonitor(5.0, 2.0, tolerance=0.3)
        assert not monitor.drifted()
        assert monitor.recent_moments() == (5.0, 2.0)


class TestAdaptiveConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(relative_tolerance=0.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(min_era_points=0)
        with pytest.raises(ValueError):
            AdaptiveConfig(retrain_period=0)


class TestAdaptiveDetector:
    def _make(self, train, maxw=48, p=1e-5, **cfg):
        thresholds = NormalThresholds.from_data(train, p, all_sizes(maxw))
        config = AdaptiveConfig(
            min_era_points=cfg.pop("min_era_points", 15_000),
            retrain_window=cfg.pop("retrain_window", 8_000),
            search_params=FAST_SEARCH,
            **cfg,
        )
        return (
            AdaptiveDetector(thresholds, train, config),
            thresholds,
        )

    def test_exact_semantics_across_retraining(self):
        data = drifting_stream(40_000, seed=3)
        train = data[:8_000]
        detector, thresholds = self._make(train)
        got = detector.detect(data, chunk_size=7_777)
        assert len(detector.eras) >= 2, "drift must trigger a retrain"
        want = naive_detect(data, thresholds)
        assert got == want

    def test_no_retrain_on_stationary_stream(self):
        data = poisson_stream(8.0, 60_000, seed=4)
        detector, thresholds = self._make(data[:8_000])
        got = detector.detect(data)
        assert len(detector.eras) == 1
        assert got == naive_detect(data, thresholds)

    def test_periodic_retraining(self):
        data = poisson_stream(8.0, 70_000, seed=5)
        detector, thresholds = self._make(
            data[:8_000], retrain_period=20_000
        )
        got = detector.detect(data, chunk_size=10_000)
        assert len(detector.eras) >= 3
        assert all(
            era.reason in ("initial", "periodic") for era in detector.eras
        )
        assert got == naive_detect(data, thresholds)

    def test_adaptation_beats_stale_structure(self):
        # The payoff claim: after drift, the adapted structure costs less
        # than continuing with the stale one.
        data = drifting_stream(60_000, seed=6)
        train = data[:8_000]
        thresholds = NormalThresholds.from_data(train, 1e-5, all_sizes(48))
        adaptive = AdaptiveDetector(
            thresholds,
            train,
            AdaptiveConfig(
                min_era_points=15_000,
                retrain_window=8_000,
                search_params=FAST_SEARCH,
            ),
        )
        got = adaptive.detect(data)
        stale_structure = train_structure(
            train, thresholds, params=FAST_SEARCH
        )
        stale = ChunkedDetector(stale_structure, thresholds)
        want = stale.detect(data)
        assert got == want  # semantics identical either way
        assert len(adaptive.eras) >= 2
        assert (
            adaptive.total_operations()
            < stale.counters.total_operations
        )

    def test_burst_accounting_consistent(self):
        data = drifting_stream(40_000, seed=7)
        detector, _ = self._make(data[:8_000])
        got = detector.detect(data, chunk_size=9_999)
        assert detector.total_bursts() == len(got)

    def test_era_bookkeeping(self):
        data = drifting_stream(40_000, seed=8)
        detector, _ = self._make(data[:8_000])
        detector.detect(data)
        assert detector.eras[0].reason == "initial"
        assert detector.eras[0].start == 0
        for earlier, later in zip(detector.eras, detector.eras[1:]):
            assert earlier.end == later.start
        assert detector.eras[-1].end == data.size
        assert "era @" in detector.describe()

    def test_process_after_finish_raises(self):
        data = poisson_stream(5.0, 5_000, seed=9)
        detector, _ = self._make(data, min_era_points=1_000_000)
        detector.detect(data)
        with pytest.raises(RuntimeError):
            detector.process(np.ones(4))
        with pytest.raises(RuntimeError):
            detector.finish()

    def test_structure_property_tracks_current_era(self):
        data = drifting_stream(40_000, seed=10)
        detector, _ = self._make(data[:8_000])
        detector.detect(data)
        assert detector.structure == detector.eras[-1].structure


class TestPreload:
    def test_preload_then_process_values_correct(self, rng):
        data = rng.poisson(6.0, 4_000).astype(float)
        thresholds = NormalThresholds.from_data(
            data[:1_000], 1e-3, all_sizes(24)
        )
        from repro.core.sbt import shifted_binary_tree

        structure = shifted_binary_tree(24)
        whole = ChunkedDetector(structure, thresholds)
        want = {b.key() for b in whole.detect(data)}
        split = 2_000
        part = ChunkedDetector(structure, thresholds)
        part.preload(data[:split])
        bursts = part.process(data[split:])
        bursts.extend(part.finish())
        got = {b.key() for b in bursts}
        # Everything ending after the preload must be found, with exact
        # aggregates for windows spanning the boundary.
        want_after = {(t, w) for t, w in want if t >= split}
        assert {k for k in got if k[0] >= split} == want_after

    def test_preload_after_process_raises(self, rng):
        data = rng.poisson(6.0, 100).astype(float)
        thresholds = NormalThresholds.from_data(data, 1e-2, all_sizes(8))
        from repro.core.sbt import shifted_binary_tree

        d = ChunkedDetector(shifted_binary_tree(8), thresholds)
        d.process(data)
        with pytest.raises(RuntimeError):
            d.preload(data)


class TestBackgroundRetrain:
    """The hot-swap contract: retraining off the ingest path changes
    *when* the handover lands (one chunk later than blocking, or
    whenever the search process finishes), never *which* bursts the
    stream yields — structure selection affects cost, not detection."""

    def _make(self, train, **kwargs):
        thresholds = NormalThresholds.from_data(train, 1e-5, all_sizes(48))
        config = AdaptiveConfig(
            min_era_points=15_000,
            retrain_window=8_000,
            search_params=FAST_SEARCH,
        )
        return (
            AdaptiveDetector(thresholds, train, config, **kwargs),
            thresholds,
        )

    def test_inline_background_identical_to_blocking(self):
        data = drifting_stream(40_000, seed=3)
        train = data[:8_000]
        blocking, thresholds = self._make(train)
        want = blocking.detect(data, chunk_size=7_777)
        assert len(blocking.eras) >= 2
        background, _ = self._make(
            train, retrain="background", retrainer=InlineRetrainer()
        )
        got = background.detect(data, chunk_size=7_777)
        assert len(background.eras) >= 2
        assert got == want
        # The handover is deferred by exactly the poll cadence: the
        # background era starts one chunk after the blocking one.
        assert background.eras[1].start > blocking.eras[1].start

    def test_process_retrainer_identical_to_blocking(self):
        data = drifting_stream(40_000, seed=3)
        train = data[:8_000]
        blocking, thresholds = self._make(train)
        want = blocking.detect(data, chunk_size=7_777)
        retrainer = ProcessRetrainer()
        try:
            background, _ = self._make(
                train, retrain="background", retrainer=retrainer
            )
            bursts = []
            for lo in range(0, data.size, 7_777):
                if retrainer.busy:
                    # Give the search process time to finish so the next
                    # chunk's poll lands the swap mid-stream rather than
                    # the search being abandoned at finish().
                    time.sleep(0.75)
                bursts.extend(background.process(data[lo : lo + 7_777]))
            bursts.extend(background.finish())
            assert len(background.eras) >= 2
            assert BurstSet(bursts) == want
        finally:
            retrainer.close()

    def test_retrain_kwarg_validation(self):
        data = poisson_stream(8.0, 9_000, seed=6)
        with pytest.raises(ValueError, match="retrain must be"):
            self._make(data[:8_000], retrain="eventually")
        with pytest.raises(ValueError, match="requires retrain="):
            self._make(data[:8_000], retrainer=InlineRetrainer())

    def test_pending_search_abandoned_at_finish(self):
        data = drifting_stream(20_000, seed=7)
        retrainer = InlineRetrainer()
        detector, thresholds = self._make(
            data[:8_000], retrain="background", retrainer=retrainer
        )
        # One whole-stream chunk: drift is only visible at the end of
        # the call, so the submit happens with no later poll to land it.
        bursts = detector.process(data)
        assert retrainer.busy  # the search ran and is awaiting delivery
        bursts.extend(detector.finish())
        assert len(detector.eras) == 1  # never swapped
        assert retrainer.busy  # an injected retrainer is not reaped...
        assert BurstSet(bursts) == naive_detect(data, thresholds)
        retrainer.close()
        assert not retrainer.busy  # ...until its owner closes it

    def test_submit_while_busy_raises(self):
        r = InlineRetrainer()
        data = poisson_stream(5.0, 2_000, seed=8)
        thresholds = NormalThresholds.from_data(data, 1e-3, all_sizes(16))
        r.submit(data, thresholds, FAST_SEARCH)
        with pytest.raises(RuntimeError, match="already pending"):
            r.submit(data, thresholds, FAST_SEARCH)
        assert r.poll() is not None
        assert r.poll() is None  # delivery is one-shot
