"""Brute-force differential testing of the 2-D spatial detectors.

``brute_force_spatial_bursts`` slices every ``k × k`` box out of the
grid and sums it literally — no pyramids, no incremental updates, no
shared subexpressions.  On small grids that oracle is cheap, and both
``naive_spatial_detect`` and ``SpatialDetector`` (refinement on and
off) must agree with it exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.thresholds import FixedThresholds
from repro.testkit import (
    brute_force_spatial_bursts,
    random_grid,
    random_spatial_thresholds,
    spatial_differential_check,
)


class TestSpatialOracle:
    @pytest.mark.parametrize("index", range(12))
    def test_random_grids_match_brute_force(self, index):
        rng = np.random.default_rng([606, index])
        grid = random_grid(rng, max_side=16)
        thresholds = random_spatial_thresholds(rng, grid)
        mismatches = spatial_differential_check(grid, thresholds)
        detail = "\n".join(m.format() for m in mismatches)
        assert mismatches == [], detail

    def test_exact_tie_on_box_sum(self):
        # A threshold equal to an existing box sum: the box must alarm
        # (>= semantics), in the oracle and in both detectors.
        grid = np.zeros((6, 6))
        grid[2:4, 2:4] = 1.0
        thresholds = FixedThresholds({1: 1.0, 2: 4.0, 3: 4.0})
        reference = brute_force_spatial_bursts(grid, thresholds)
        assert (2, 2, 2) in reference  # the tied 2x2 box alarms
        assert (1, 1, 3) in reference  # 3x3 boxes containing it too
        assert spatial_differential_check(grid, thresholds) == []

    def test_all_zero_grid_with_zero_threshold(self):
        grid = np.zeros((5, 7))
        thresholds = FixedThresholds({1: 0.0, 2: 0.0})
        reference = brute_force_spatial_bursts(grid, thresholds)
        # every placement of every size bursts at threshold zero
        assert len(reference) == 5 * 7 + 4 * 6
        assert spatial_differential_check(grid, thresholds) == []

    def test_oracle_refuses_oversized_grids(self):
        grid = np.zeros((600, 600))
        thresholds = FixedThresholds({1: 1.0})
        with pytest.raises(ValueError, match="too large"):
            spatial_differential_check(grid, thresholds)
