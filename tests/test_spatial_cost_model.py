"""Accuracy tests for the spatial theoretical cost model."""

import numpy as np
import pytest

from repro.core.thresholds import all_sizes
from repro.spatial import (
    SpatialDetector,
    SpatialNormalThresholds,
    SpatialStructure,
    spatial_binary_structure,
)
from repro.spatial.search2d import (
    SpatialProbabilityModel,
    SpatialTheoreticalCostModel,
)


@pytest.fixture
def setup(rng):
    train = rng.poisson(0.1, (120, 120)).astype(float)
    grid = rng.poisson(0.1, (160, 160)).astype(float)
    thresholds = SpatialNormalThresholds.from_grid(train, 1e-4, all_sizes(24))
    model = SpatialTheoreticalCostModel(
        thresholds, SpatialProbabilityModel(train)
    )
    return train, grid, thresholds, model


class TestSpatialProbabilityModel:
    def test_counts_exceedances(self, rng):
        grid = rng.poisson(1.0, (50, 50)).astype(float)
        model = SpatialProbabilityModel(grid)
        from repro.spatial import sliding_box_sum

        sums = sliding_box_sum(grid, 4).ravel()
        threshold = float(np.median(sums))
        got = model.exceed_probabilities(4, np.array([threshold]))[0]
        assert got == pytest.approx((sums >= threshold).mean())

    def test_box_exceeding_grid(self):
        model = SpatialProbabilityModel(np.ones((4, 4)))
        assert model.exceed_probabilities(100, np.array([1.0]))[0] == 1.0
        assert model.exceed_probabilities(100, np.array([1e9]))[0] == 0.0

    def test_cache_bounded(self, rng):
        model = SpatialProbabilityModel(
            rng.poisson(1.0, (30, 30)).astype(float), cache_size=2
        )
        for size in (2, 3, 4, 5):
            model.exceed_probabilities(size, np.array([1.0]))
        assert len(model._cache) == 2


class TestCostModelAccuracy:
    def test_prediction_tracks_measured(self, setup):
        _train, grid, thresholds, model = setup
        for structure in (
            spatial_binary_structure(24),
            SpatialStructure.from_pairs([(4, 2), (10, 2), (27, 4)]),
        ):
            predicted = model.cost_per_point(structure.base)
            detector = SpatialDetector(structure, thresholds)
            detector.detect(grid)
            actual = detector.counters.total_operations / grid.size
            # The model ignores border effects (clamped lattice boxes add
            # a few percent of extra nodes), so the band is loose.
            assert predicted == pytest.approx(actual, rel=0.35), structure

    def test_additivity(self, setup):
        *_rest, model = setup
        structure = SpatialStructure.from_pairs([(4, 2), (10, 2), (27, 4)])
        total = model.base_term()
        levels = structure.levels
        for i in range(1, len(levels)):
            total += model.level_term(levels[i - 1], levels[i])
        assert model.cost_per_point(structure.base) == pytest.approx(total)

    def test_term_cache(self, setup):
        *_rest, model = setup
        from repro.core.structure import Level

        first = model.level_term(Level(4, 2), Level(10, 2))
        assert model.level_term(Level(4, 2), Level(10, 2)) == first
        assert len(model._term_cache) == 1
