"""Tier-1 replay of the committed fuzz corpus.

Every JSON reproducer under ``tests/corpus/`` is re-run through the full
differential battery on each test run.  The corpus starts as a seed set
covering every stream family plus two spatial grids; whenever the
nightly fuzzer shrinks a real failure, its reproducer gets committed
here and becomes a permanent regression test.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.testkit import corpus_paths, replay_path

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = corpus_paths(CORPUS_DIR)


def test_corpus_is_seeded():
    # The seed corpus must exist — an empty directory would silently
    # turn every replay test below into a no-op.
    assert len(CORPUS_FILES) >= 8


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_corpus_case_replays_clean(path: Path):
    mismatches = replay_path(path)
    detail = "\n".join(m.format() for m in mismatches)
    assert mismatches == [], f"{path.name} regressed:\n{detail}"
