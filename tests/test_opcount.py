"""Unit tests for operation counters."""

import numpy as np
import pytest

from repro.core.opcount import OpCounters


class TestOpCounters:
    def test_totals(self):
        c = OpCounters(2)
        c.updates[:] = [10, 5, 2]
        c.filter_comparisons[:] = [0, 5, 2]
        c.search_cells[:] = [0, 8, 0]
        assert c.total_updates == 17
        assert c.total_filter_comparisons == 7
        assert c.total_search_cells == 8
        assert c.total_operations == 32

    def test_num_levels(self):
        assert OpCounters(3).num_levels == 3

    def test_alarm_probability(self):
        c = OpCounters(2)
        c.updates[:] = [10, 10, 4]
        c.alarms[:] = [0, 5, 1]
        assert c.alarm_probability(1) == 0.5
        assert c.alarm_probability(2) == 0.25
        assert c.alarm_probability(0) == 0.0

    def test_alarm_probability_no_updates(self):
        c = OpCounters(1)
        assert c.alarm_probability(1) == 0.0

    def test_alarm_probabilities_vector(self):
        c = OpCounters(2)
        c.updates[:] = [10, 10, 0]
        c.alarms[:] = [0, 2, 0]
        np.testing.assert_allclose(c.alarm_probabilities(), [0.2, 0.0])

    def test_weighted_alarm_probability(self):
        c = OpCounters(2)
        c.updates[:] = [10, 10, 10]
        c.alarms[:] = [0, 10, 0]  # level 1 always alarms, level 2 never
        # Level 1 weighted 1, level 2 weighted 3.
        assert c.weighted_alarm_probability(np.array([1.0, 3.0])) == 0.25

    def test_weighted_alarm_probability_zero_weights(self):
        c = OpCounters(1)
        c.updates[:] = [1, 1]
        assert c.weighted_alarm_probability(np.array([0.0])) == 0.0

    def test_weighted_alarm_probability_shape_mismatch(self):
        c = OpCounters(2)
        with pytest.raises(ValueError):
            c.weighted_alarm_probability(np.array([1.0]))

    def test_merge(self):
        a, b = OpCounters(1), OpCounters(1)
        a.updates[:] = [1, 2]
        b.updates[:] = [3, 4]
        a.bursts, b.bursts = 1, 2
        a.merge(b)
        assert list(a.updates) == [4, 6]
        assert a.bursts == 3

    def test_merge_mismatched_levels(self):
        with pytest.raises(ValueError):
            OpCounters(1).merge(OpCounters(2))

    def test_merged_ragged_levels_align_from_bottom(self):
        # Three structures of different depth: levels align at the
        # bottom, deeper-only levels pass through unchanged, and every
        # counter array (not just updates) merges independently.
        a, b, c = OpCounters(1), OpCounters(3), OpCounters(2)
        a.updates[:] = [1, 2]
        b.updates[:] = [10, 20, 30, 40]
        c.updates[:] = [100, 200, 300]
        a.filter_comparisons[:] = [5, 5]
        b.search_cells[:] = [0, 7, 7, 7]
        a.bursts, b.bursts, c.bursts = 1, 2, 3
        merged = OpCounters.merged([a, b, c])
        assert merged.num_levels == 3
        assert list(merged.updates) == [111, 222, 330, 40]
        assert list(merged.filter_comparisons) == [5, 5, 0, 0]
        assert list(merged.search_cells) == [0, 7, 7, 7]
        assert merged.bursts == 6
        # Exactness: grand totals equal the sum of the parts.
        assert merged.total_operations == sum(
            x.total_operations for x in (a, b, c)
        )

    def test_merged_single_and_empty(self):
        only = OpCounters(2)
        only.updates[:] = [1, 2, 3]
        alone = OpCounters.merged([only])
        assert list(alone.updates) == [1, 2, 3]
        assert alone is not only  # a fresh accumulator, not an alias
        empty = OpCounters.merged([])
        assert empty.num_levels == 0
        assert empty.total_operations == 0

    def test_merged_accepts_any_iterable(self):
        parts = (OpCounters(1) for _ in range(3))
        assert OpCounters.merged(parts).num_levels == 1

    def test_as_dict_and_repr(self):
        c = OpCounters(1)
        c.updates[:] = [1, 1]
        d = c.as_dict()
        assert d["updates"] == 2
        assert d["operations"] == 2
        assert "updates=2" in repr(c)
