"""Unit tests for operation counters."""

import numpy as np
import pytest

from repro.core.opcount import OpCounters


class TestOpCounters:
    def test_totals(self):
        c = OpCounters(2)
        c.updates[:] = [10, 5, 2]
        c.filter_comparisons[:] = [0, 5, 2]
        c.search_cells[:] = [0, 8, 0]
        assert c.total_updates == 17
        assert c.total_filter_comparisons == 7
        assert c.total_search_cells == 8
        assert c.total_operations == 32

    def test_num_levels(self):
        assert OpCounters(3).num_levels == 3

    def test_alarm_probability(self):
        c = OpCounters(2)
        c.updates[:] = [10, 10, 4]
        c.alarms[:] = [0, 5, 1]
        assert c.alarm_probability(1) == 0.5
        assert c.alarm_probability(2) == 0.25
        assert c.alarm_probability(0) == 0.0

    def test_alarm_probability_no_updates(self):
        c = OpCounters(1)
        assert c.alarm_probability(1) == 0.0

    def test_alarm_probabilities_vector(self):
        c = OpCounters(2)
        c.updates[:] = [10, 10, 0]
        c.alarms[:] = [0, 2, 0]
        np.testing.assert_allclose(c.alarm_probabilities(), [0.2, 0.0])

    def test_weighted_alarm_probability(self):
        c = OpCounters(2)
        c.updates[:] = [10, 10, 10]
        c.alarms[:] = [0, 10, 0]  # level 1 always alarms, level 2 never
        # Level 1 weighted 1, level 2 weighted 3.
        assert c.weighted_alarm_probability(np.array([1.0, 3.0])) == 0.25

    def test_weighted_alarm_probability_zero_weights(self):
        c = OpCounters(1)
        c.updates[:] = [1, 1]
        assert c.weighted_alarm_probability(np.array([0.0])) == 0.0

    def test_weighted_alarm_probability_shape_mismatch(self):
        c = OpCounters(2)
        with pytest.raises(ValueError):
            c.weighted_alarm_probability(np.array([1.0]))

    def test_merge(self):
        a, b = OpCounters(1), OpCounters(1)
        a.updates[:] = [1, 2]
        b.updates[:] = [3, 4]
        a.bursts, b.bursts = 1, 2
        a.merge(b)
        assert list(a.updates) == [4, 6]
        assert a.bursts == 3

    def test_merge_mismatched_levels(self):
        with pytest.raises(ValueError):
            OpCounters(1).merge(OpCounters(2))

    def test_as_dict_and_repr(self):
        c = OpCounters(1)
        c.updates[:] = [1, 1]
        d = c.as_dict()
        assert d["updates"] == 2
        assert d["operations"] == 2
        assert "updates=2" in repr(c)
