"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.thresholds import NormalThresholds, all_sizes
from repro.testkit.oracles import brute_force_bursts


@pytest.fixture
def rng():
    """A deterministic random generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_poisson(rng):
    """A small Poisson stream for quick detector checks."""
    return rng.poisson(5.0, 2000).astype(np.float64)


@pytest.fixture
def small_thresholds(small_poisson):
    """Thresholds over sizes 1..32 fitted to the small stream."""
    return NormalThresholds.from_data(
        small_poisson[:800], 1e-3, all_sizes(32)
    )


@pytest.fixture
def oracle():
    """The brute-force burst oracle as a fixture."""
    return brute_force_bursts
