"""Tests for rectangular spatial burst detection."""

import numpy as np
import pytest

from repro.spatial import (
    RectangularDetector,
    RectangularThresholds,
    RectBurst,
    RectBurstSet,
    naive_rectangular_detect,
    sliding_rect_sum,
    spatial_binary_structure,
    SpatialStructure,
)


def brute_force_rects(grid, thresholds):
    out = set()
    height, width = grid.shape
    for h, w in thresholds.shapes:
        f = thresholds.threshold(h, w)
        for r in range(height - h + 1):
            for c in range(width - w + 1):
                if grid[r : r + h, c : c + w].sum() >= f:
                    out.add((r, c, h, w))
    return out


class TestSlidingRectSum:
    def test_matches_slices(self, rng):
        grid = rng.uniform(0, 3, (12, 15))
        sums = sliding_rect_sum(grid, 3, 5)
        assert sums.shape == (10, 11)
        assert sums[4, 6] == pytest.approx(grid[4:7, 6:11].sum())

    def test_too_large(self):
        assert sliding_rect_sum(np.ones((3, 3)), 4, 1).size == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            sliding_rect_sum(np.ones((3, 3)), 0, 1)


class TestThresholds:
    def test_normal_formula(self):
        th = RectangularThresholds.normal(2.0, 1.0, 1e-4, [(2, 8)])
        from scipy.stats import norm

        z = norm.ppf(1 - 1e-4)
        assert th.threshold(2, 8) == pytest.approx(32.0 + 4.0 * z)

    def test_shapes_and_maxdim(self):
        th = RectangularThresholds({(2, 8): 5.0, (3, 3): 4.0})
        assert th.shapes == ((2, 8), (3, 3))
        assert th.max_dimension == 8
        assert th.shapes_with_maxdim_in(3, 3) == [(3, 3)]
        assert th.shapes_with_maxdim_in(4, 10) == [(2, 8)]

    def test_validation(self):
        with pytest.raises(ValueError):
            RectangularThresholds({})
        with pytest.raises(ValueError):
            RectangularThresholds({(0, 2): 1.0})
        with pytest.raises(ValueError):
            RectangularThresholds.normal(1.0, -1.0, 0.5, [(2, 2)])
        with pytest.raises(ValueError):
            RectangularThresholds.normal(1.0, 1.0, 1.5, [(2, 2)])


class TestDetection:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_bruteforce(self, seed):
        rng = np.random.default_rng(seed)
        grid = rng.poisson(0.3, (24, 30)).astype(float)
        grid[8:10, 5:17] += 2.5
        shapes = [(1, 1), (1, 6), (6, 1), (2, 8), (8, 2), (3, 3), (6, 6)]
        th = RectangularThresholds.normal(0.3, np.sqrt(0.3), 1e-3, shapes)
        want = brute_force_rects(grid, th)
        got = RectangularDetector(spatial_binary_structure(8), th).detect(grid)
        assert got.keys() == want
        assert naive_rectangular_detect(grid, th).keys() == want

    def test_various_structures(self, rng):
        grid = rng.poisson(0.4, (20, 20)).astype(float)
        grid[3:5, 10:18] += 3.0
        shapes = [(2, 8), (4, 4), (8, 2)]
        th = RectangularThresholds.normal(0.4, np.sqrt(0.4), 1e-3, shapes)
        want = brute_force_rects(grid, th)
        for pairs in [[(10, 3)], [(3, 1), (12, 4)]]:
            structure = SpatialStructure.from_pairs(pairs)
            got = RectangularDetector(structure, th).detect(grid)
            assert got.keys() == want, pairs

    def test_anisotropic_event_found_at_its_shape(self, rng):
        # A faint wide strip: only the aligned shape accumulates enough
        # of it to clear the threshold; a (20, 2) region crossing the
        # strip picks up a 2x2 sliver (+2.8), far below the margin.
        grid = rng.poisson(0.1, (40, 40)).astype(float)
        grid[20:22, 5:25] += 0.7  # faint 2 x 20 strip
        shapes = [(2, 20), (20, 2)]
        th = RectangularThresholds.normal(0.1, np.sqrt(0.1), 1e-6, shapes)
        got = RectangularDetector(spatial_binary_structure(20), th).detect(grid)
        by_shape = {}
        for b in got:
            key = (b.height, b.width)
            by_shape[key] = by_shape.get(key, 0) + 1
        assert by_shape.get((2, 20), 0) >= 1
        assert by_shape.get((20, 2), 0) <= 2

    def test_coverage_enforced(self):
        th = RectangularThresholds({(2, 50): 1.0})
        with pytest.raises(ValueError, match="coverage"):
            RectangularDetector(spatial_binary_structure(8), th)

    def test_requires_2d(self):
        th = RectangularThresholds({(2, 2): 1.0})
        d = RectangularDetector(spatial_binary_structure(2), th)
        with pytest.raises(ValueError):
            d.detect(np.ones(5))

    def test_cell_shape_handled_at_level_zero(self):
        grid = np.zeros((6, 6))
        grid[2, 4] = 9.0
        th = RectangularThresholds({(1, 1): 5.0, (2, 2): 100.0})
        got = RectangularDetector(spatial_binary_structure(2), th).detect(grid)
        assert got.keys() == {(2, 4, 1, 1)}


class TestRectBurstSet:
    def test_dedup_and_eq(self):
        a = RectBurstSet([RectBurst(0, 0, 2, 3, 5.0), RectBurst(0, 0, 2, 3, 9.0)])
        assert len(a) == 1
        assert a == RectBurstSet([RectBurst(0, 0, 2, 3, 1.0)])

    def test_shapes(self):
        s = RectBurstSet(
            [RectBurst(0, 0, 2, 3, 1.0), RectBurst(1, 1, 3, 2, 1.0)]
        )
        assert s.shapes() == ((2, 3), (3, 2))
