"""Unit tests for SAT structures and the SBT factory."""

import pytest

from repro.core.sbt import sbt_levels_needed, shifted_binary_tree
from repro.core.structure import (
    Level,
    SATStructure,
    StructureError,
    single_level_structure,
)


class TestLevel:
    def test_basic(self):
        lv = Level(8, 4)
        assert lv.overlap == 4

    def test_invalid_size(self):
        with pytest.raises(StructureError):
            Level(0, 1)

    def test_invalid_shift(self):
        with pytest.raises(StructureError):
            Level(4, 0)
        with pytest.raises(StructureError):
            Level(4, 5)

    def test_ordering(self):
        assert Level(2, 1) < Level(3, 1)


class TestConstraints:
    def test_level0_required(self):
        with pytest.raises(StructureError, match="level 0"):
            SATStructure((Level(2, 1),))

    def test_empty_raises(self):
        with pytest.raises(StructureError):
            SATStructure(())

    def test_sizes_must_increase(self):
        with pytest.raises(StructureError, match="must exceed"):
            SATStructure.from_pairs([(4, 2), (4, 2)])

    def test_shift_divisibility(self):
        with pytest.raises(StructureError, match="multiple"):
            SATStructure.from_pairs([(4, 2), (8, 3)])

    def test_cover_constraint(self):
        # (8, 6): 8 - 6 + 1 = 3 < 4 = size below.
        with pytest.raises(StructureError, match="cover"):
            SATStructure.from_pairs([(4, 1), (8, 6)])

    def test_valid_structure(self):
        s = SATStructure.from_pairs([(4, 2), (8, 4), (20, 8)])
        assert s.num_levels == 3
        assert s.top == Level(20, 8)

    def test_shift_can_stay_equal(self):
        s = SATStructure.from_pairs([(4, 2), (6, 2)])
        assert s.coverage == 5


class TestGeometry:
    def test_coverage(self):
        s = SATStructure.from_pairs([(4, 2), (10, 4)])
        assert s.coverage == 7
        assert s.covers(7) and not s.covers(8)

    def test_responsibility_ranges_tile(self):
        s = SATStructure.from_pairs([(4, 2), (10, 4), (24, 8)])
        ranges = [s.responsibility_range(i) for i in range(len(s.levels))]
        assert ranges[0] == (1, 1)
        # Ranges tile [1, coverage] exactly.
        expected_lo = 1
        for lo, hi in ranges:
            assert lo == expected_lo
            expected_lo = hi + 1
        assert expected_lo == s.coverage + 1

    def test_empty_responsibility_range_allowed(self):
        # Second level adds no coverage: its range is empty.
        s = SATStructure.from_pairs([(4, 1), (8, 5)])
        lo, hi = s.responsibility_range(2)
        assert lo > hi

    def test_level_for_size(self):
        s = SATStructure.from_pairs([(4, 2), (10, 4)])
        assert s.level_for_size(1) == 0
        assert s.level_for_size(2) == 1
        assert s.level_for_size(3) == 1
        assert s.level_for_size(4) == 2
        assert s.level_for_size(7) == 2

    def test_level_for_size_beyond_coverage(self):
        s = SATStructure.from_pairs([(4, 2)])
        with pytest.raises(ValueError, match="coverage"):
            s.level_for_size(4)

    def test_bounding_ratios(self):
        s = SATStructure.from_pairs([(4, 2), (10, 4)])
        assert s.bounding_ratio(0) == 1.0
        assert s.bounding_ratio(1) == pytest.approx(4 / 2)
        assert s.bounding_ratio(2) == pytest.approx(10 / 4)
        assert s.bounding_ratios() == [
            s.bounding_ratio(1),
            s.bounding_ratio(2),
        ]

    def test_nodes_per_cycle(self):
        s = SATStructure.from_pairs([(4, 2), (10, 4)])
        # s_top = 4: level 0 gives 4 nodes, level 1 gives 2, level 2 gives 1.
        assert s.nodes_per_cycle() == 7

    def test_density(self):
        s = SATStructure.from_pairs([(4, 2), (10, 4)])
        assert s.density() == pytest.approx(7 / (4 * 7))
        assert s.density(10) == pytest.approx(7 / (4 * 10))

    def test_extended(self):
        s = SATStructure.from_pairs([(4, 2)])
        s2 = s.extended(10, 4)
        assert s2.num_levels == 2
        assert s.num_levels == 1  # original untouched


class TestSerialization:
    def test_roundtrip_dict(self):
        s = SATStructure.from_pairs([(4, 2), (10, 4)])
        assert SATStructure.from_dict(s.to_dict()) == s

    def test_roundtrip_json(self):
        s = SATStructure.from_pairs([(4, 2), (10, 4)])
        assert SATStructure.from_json(s.to_json()) == s

    def test_hash_and_eq(self):
        a = SATStructure.from_pairs([(4, 2)])
        b = SATStructure.from_pairs([(4, 2)])
        assert a == b and hash(a) == hash(b)
        assert a != SATStructure.from_pairs([(4, 1)])
        assert a.__eq__("x") is NotImplemented

    def test_describe_mentions_levels(self):
        text = SATStructure.from_pairs([(4, 2)]).describe()
        assert "level  1" in text and "coverage 3" in text

    def test_repr(self):
        assert "coverage=3" in repr(SATStructure.from_pairs([(4, 2)]))


class TestShiftedBinaryTree:
    def test_levels_needed(self):
        assert sbt_levels_needed(2) == 1
        assert sbt_levels_needed(3) == 2
        assert sbt_levels_needed(5) == 3
        assert sbt_levels_needed(65) == 7
        assert sbt_levels_needed(66) == 8

    def test_levels_needed_invalid(self):
        with pytest.raises(ValueError):
            sbt_levels_needed(0)

    def test_structure_shape(self):
        sbt = shifted_binary_tree(16)
        assert [(lv.size, lv.shift) for lv in sbt.levels[1:]] == [
            (2, 1),
            (4, 2),
            (8, 4),
            (16, 8),
            (32, 16),
        ]
        assert sbt.covers(16)

    def test_min_coverage(self):
        assert shifted_binary_tree(2).coverage >= 2
        with pytest.raises(ValueError):
            shifted_binary_tree(1)

    @pytest.mark.parametrize("maxw", [2, 3, 7, 100, 1000])
    def test_always_covers_and_valid(self, maxw):
        sbt = shifted_binary_tree(maxw)
        assert sbt.covers(maxw)
        # One fewer level must NOT cover (minimality).
        if sbt.num_levels > 1:
            smaller = SATStructure(sbt.levels[:-1])
            assert not smaller.covers(maxw)

    def test_bounding_ratio_approaches_four(self):
        # T_i = 2^i / (2^{i-2} + 2) -> 4 from below as i grows (paper §5.1:
        # "T in a Shifted Binary Tree is designed to be about 4").
        sbt = shifted_binary_tree(1000)
        ratios = sbt.bounding_ratios()
        assert all(r <= 4.0 for r in ratios)
        assert ratios == sorted(ratios)  # monotone toward 4
        assert ratios[-1] == pytest.approx(4.0, rel=0.05)


class TestSingleLevel:
    def test_covers_everything_densely(self):
        s = single_level_structure(50)
        assert s.coverage == 50
        assert s.top.shift == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            single_level_structure(1)
