"""Brute-force oracles shared by the test modules."""

import numpy as np


def brute_force_bursts(data, thresholds, aggregate="sum"):
    """O(k*N*w) oracle: literally evaluate every window from scratch."""
    data = np.asarray(data, dtype=np.float64)
    out = set()
    for w in thresholds.window_sizes:
        w = int(w)
        f = thresholds.threshold(w)
        for end in range(w - 1, data.size):
            window = data[end - w + 1 : end + 1]
            value = window.sum() if aggregate == "sum" else window.max()
            if value >= f:
                out.add((end, w))
    return out
