"""Brute-force oracles shared by the test modules.

The implementations moved into :mod:`repro.testkit.oracles` (the fuzz
harness and the test suite must use the *same* oracle, or a divergence
between them could mask a bug).  This module re-exports them so existing
``from _oracles import ...`` imports keep working.
"""

from repro.testkit.oracles import (  # noqa: F401
    brute_force_bursts,
    brute_force_spatial_bursts,
)
