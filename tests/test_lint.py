"""Self-tests for the repro-lint static analyzer.

Fixture files under ``tests/lint_fixtures/`` mirror the package layout
(``repro/runtime/...``, ``repro/core/...``) so rule *scoping* is under
test along with the rules themselves: every known-bad snippet must trip
its rule at the right line, clean patterns and out-of-scope files must
stay silent, and the real source tree must lint clean.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.lint import ALL_RULES, lint_paths, lint_source, rule_by_code
from repro.lint.__main__ import main as lint_main
from repro.lint.engine import (
    PARSE_ERROR,
    Finding,
    render_github,
    render_json,
    render_text,
)

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC = Path(__file__).parent.parent / "src"


def lint_fixture(name: str) -> list:
    return lint_paths([FIXTURES / "repro" / name], ALL_RULES)


def lint_tree(name: str) -> list:
    """Lint a standalone fixture tree (``lint_fixtures/<name>/repro/...``)."""
    return lint_paths([FIXTURES / name], ALL_RULES)


def expected_lines(path: Path, code: str) -> list[int]:
    """Lines annotated ``-> RLxxx here`` point at the following statement."""
    lines = []
    for i, text in enumerate(path.read_text().splitlines(), start=1):
        if f"-> {code} here" in text:
            lines.append(i + 1)
    return lines


@pytest.mark.parametrize(
    "fixture, code",
    [
        ("runtime/rl001_bad.py", "RL001"),
        ("runtime/rl002_bad.py", "RL002"),
        ("core/rl003_bad.py", "RL003"),
        ("core/rl004_bad.py", "RL004"),
        ("core/rl005_bad.py", "RL005"),
        ("testkit/rl005_bad.py", "RL005"),
        ("ingest/rl005_bad.py", "RL005"),
        ("core/rl006_bad.py", "RL006"),
        ("runtime/rl007_bad.py", "RL007"),
        ("runtime/rl008_bad.py", "RL008"),
        ("core/kernel/rl009_bad.py", "RL009"),
        ("core/rl012_bad.py", "RL012"),
        ("ingest/rl012_bad.py", "RL012"),
        ("durable/rl013_bad.py", "RL013"),
    ],
)
def test_bad_fixture_trips_rule_at_marked_lines(fixture, code):
    path = FIXTURES / "repro" / fixture
    findings = lint_fixture(fixture)
    assert findings, f"{fixture} produced no findings"
    got = [(f.rule, f.line) for f in findings if f.rule == code]
    marked = expected_lines(path, code)
    assert marked, f"{fixture} has no '-> {code} here' markers"
    assert sorted(line for _, line in got) == marked


def test_rl001_distinguishes_ownership_gaps():
    messages = sorted(f.message for f in lint_fixture("runtime/rl001_bad.py"))
    assert any("no owner" in m for m in messages)
    assert any("must define a close()" in m for m in messages)
    assert any("never unlink()s" in m for m in messages)
    assert any("release segments first" in m for m in messages)


@pytest.mark.parametrize(
    "fixture",
    [
        "runtime/rl001_ok.py",
        "runtime/rl007_ok.py",
        "runtime/rl008_ok.py",
        "core/kernel/rl009_ok.py",
        "core/rl012_ok.py",
        "durable/rl013_ok.py",
        "experiments/scope_ok.py",
    ],
)
def test_clean_fixtures_produce_no_findings(fixture):
    assert lint_fixture(fixture) == []


def test_flow_controlled_sends_pass():
    findings = [
        f for f in lint_fixture("runtime/rl002_bad.py") if f.rule == "RL002"
    ]
    # Only the unbounded broadcast() loop fires; bounded() stays clean.
    assert len(findings) == 1


def test_noqa_suppression_is_code_specific():
    findings = lint_fixture("core/noqa_ok.py")
    # Everything is suppressed except the one wrong-code suppression.
    assert [f.rule for f in findings] == ["RL006"]
    path = FIXTURES / "repro" / "core" / "noqa_ok.py"
    (wrong_line,) = [
        i
        for i, text in enumerate(path.read_text().splitlines(), start=1)
        if "noqa[RL005]" in text and "np.empty" in text
    ]
    assert findings[0].line == wrong_line


def test_real_tree_is_clean():
    assert lint_paths([SRC], ALL_RULES) == []


def test_rules_scope_to_their_packages():
    # A runtime-only rule never fires on identical code under core/.
    source = Path(FIXTURES / "repro/runtime/rl002_bad.py").read_text()
    in_scope = lint_source(source, "x/repro/runtime/mod.py", ALL_RULES)
    out_of_scope = lint_source(source, "x/repro/core/mod.py", ALL_RULES)
    assert any(f.rule == "RL002" for f in in_scope)
    assert not any(f.rule == "RL002" for f in out_of_scope)


@pytest.mark.parametrize(
    "fixture, code",
    [("ingest/rl005_bad.py", "RL005"), ("ingest/rl012_bad.py", "RL012")],
)
def test_rl005_rl012_scope_includes_ingest(fixture, code):
    # The determinism rules extend to repro.ingest; the same code under
    # a package outside every scope (mining) stays silent.
    source = (FIXTURES / "repro" / fixture).read_text()
    in_scope = lint_source(source, "x/repro/ingest/mod.py", ALL_RULES)
    out_of_scope = lint_source(source, "x/repro/mining/mod.py", ALL_RULES)
    assert any(f.rule == code for f in in_scope)
    assert not any(f.rule == code for f in out_of_scope)


def test_rl013_exempts_fsio_and_scopes_to_durable():
    # The choke point itself is the one legal writer; identical code in
    # fsio.py (or outside repro/durable entirely) never trips RL013.
    source = (FIXTURES / "repro/durable/rl013_bad.py").read_text()
    in_scope = lint_source(source, "x/repro/durable/wal.py", ALL_RULES)
    in_fsio = lint_source(source, "x/repro/durable/fsio.py", ALL_RULES)
    outside = lint_source(source, "x/repro/ingest/mod.py", ALL_RULES)
    assert any(f.rule == "RL013" for f in in_scope)
    assert not any(f.rule == "RL013" for f in in_fsio)
    assert not any(f.rule == "RL013" for f in outside)


def test_rl013_message_names_the_fsio_alternative():
    messages = [
        f.message
        for f in lint_fixture("durable/rl013_bad.py")
        if f.rule == "RL013"
    ]
    assert any("atomic_write_bytes" in m for m in messages)
    assert any("os.rename" in m for m in messages)
    assert any("shutil.move" in m for m in messages)
    assert any("unverifiable" in m for m in messages)


def test_rl009_scopes_to_kernel_package():
    # Identical code outside repro/core/kernel/ never trips RL009.
    source = (FIXTURES / "repro/core/kernel/rl009_bad.py").read_text()
    in_scope = lint_source(source, "x/repro/core/kernel/mod.py", ALL_RULES)
    out_of_scope = lint_source(source, "x/repro/core/mod.py", ALL_RULES)
    assert any(f.rule == "RL009" for f in in_scope)
    assert not any(f.rule == "RL009" for f in out_of_scope)


# -- whole-program rules ------------------------------------------------
def _assert_marked_lines(tree_name: str, code: str) -> list:
    """Every finding in the tree sits on a ``-> RLxxx here`` marked line."""
    findings = lint_tree(tree_name)
    assert findings, f"{tree_name} produced no findings"
    for path in sorted((FIXTURES / tree_name).rglob("*.py")):
        got = sorted(
            f.line
            for f in findings
            if f.rule == code and Path(f.path) == path
        )
        assert got == expected_lines(path, code), path
    return findings


def test_rl010_flags_layer_violations_and_cycles():
    findings = _assert_marked_lines("layering_bad", "RL010")
    messages = [f.message for f in findings]
    assert any("must not import layer 'runtime'" in m for m in messages)
    assert any(
        "import cycle: repro.io.reader -> repro.io.writer -> repro.io.reader"
        in m
        for m in messages
    )
    assert any("not in the declared layer spec" in m for m in messages)


def test_rl010_clean_tree_with_lazy_cycle_breaker():
    # The tree contains a would-be a <-> b cycle whose back edge is a
    # function-body import: layer-checked but exempt from cycle detection.
    assert lint_tree("layering_ok") == []


def test_rl011_flags_protocol_drift_at_marked_lines():
    findings = _assert_marked_lines("ipc_bad", "RL011")
    messages = [f.message for f in findings]
    assert any("never dispatches it" in m for m in messages)
    assert any("dead protocol surface" in m for m in messages)
    assert any(
        "sent with 3 fields but the worker handler destructures 4" in m
        for m in messages
    )
    assert any("built with 3 fields here but 2 at line" in m for m in messages)
    assert any("never produces" in m for m in messages)


def test_rl011_symmetric_protocol_is_clean():
    assert lint_tree("ipc_ok") == []


def test_rl011_missing_stop_terminator():
    findings = lint_tree("ipc_nostop")
    assert [f.rule for f in findings] == ["RL011"]
    assert "no 'stop' terminator" in findings[0].message
    assert findings[0].path.endswith("worker.py")


def test_rl011_applies_per_tree_not_across_trees():
    # ipc_bad's ping sender must not be "handled" by another tree's
    # worker: linting both trees at once reports the same drift.
    both = lint_paths([FIXTURES / "ipc_bad", FIXTURES / "ipc_ok"], ALL_RULES)
    assert [f for f in both if "ipc_ok" in f.path] == []
    assert any("'ping'" in f.message for f in both)


# -- suppression edge cases ---------------------------------------------
def test_project_finding_suppressed_on_sending_line(tmp_path):
    # The noqa sits on the *sending* line in parallel.py even though the
    # rule's evidence spans both sides of the protocol.
    assert lint_tree("ipc_noqa") == []
    target = tmp_path / "ipc_noqa"
    shutil.copytree(FIXTURES / "ipc_noqa", target)
    parallel = target / "repro" / "runtime" / "parallel.py"
    parallel.write_text(
        parallel.read_text().replace("  # repro: noqa[RL011]", "")
    )
    findings = lint_paths([target], ALL_RULES)
    assert [f.rule for f in findings] == ["RL011"]
    assert "'ping'" in findings[0].message


def test_noqa_multi_code_list():
    source = (
        "import time\n"
        "\n"
        "def f():\n"
        "    t = time.time()  # repro: noqa[RL005, RL006]\n"
        "    return t\n"
    )
    assert lint_source(source, "x/repro/core/mod.py", ALL_RULES) == []


def test_noqa_inside_string_literal_does_not_suppress():
    source = (
        "import time\n"
        "\n"
        "def f():\n"
        '    s = "# repro: noqa[RL005]"; t = time.time()\n'
        "    return s, t\n"
    )
    findings = lint_source(source, "x/repro/core/mod.py", ALL_RULES)
    assert [f.rule for f in findings] == ["RL005"]


def test_syntax_error_becomes_parse_finding():
    findings = lint_source("def broken(:\n", "repro/core/x.py", ALL_RULES)
    assert len(findings) == 1
    assert findings[0].rule == PARSE_ERROR


def test_finding_format_and_json_roundtrip():
    finding = Finding("a/b.py", 3, 7, "RL005", "message text")
    assert finding.format() == "a/b.py:3:7: RL005 message text"
    payload = json.loads(render_json([finding]))
    assert payload["count"] == 1
    assert payload["findings"][0] == finding.to_dict()
    text = render_text([finding])
    assert text.splitlines() == ["a/b.py:3:7: RL005 message text", "1 finding"]


def test_rule_metadata_complete():
    codes = [rule.code for rule in ALL_RULES]
    assert codes == sorted(codes) and len(set(codes)) == len(codes)
    for rule in ALL_RULES:
        assert rule.code.startswith("RL")
        assert rule.name and rule.invariant
        assert rule_by_code(rule.code) is rule
    with pytest.raises(KeyError):
        rule_by_code("RL999")


# -- CLI ----------------------------------------------------------------
def test_cli_exit_codes(capsys):
    assert lint_main([str(SRC)]) == 0
    assert "0 findings" in capsys.readouterr().out
    assert lint_main([str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "RL001" in out and "findings" in out


def test_cli_json_output(capsys):
    assert lint_main([str(FIXTURES), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == len(payload["findings"]) > 0
    assert {f["rule"] for f in payload["findings"]} >= {"RL001", "RL002"}


def test_cli_select_filters_rules(capsys):
    assert lint_main([str(FIXTURES), "--select", "RL002"]) == 1
    payload = capsys.readouterr().out
    assert "RL002" in payload and "RL001" not in payload


def test_cli_rejects_unknown_rule_and_path():
    with pytest.raises(SystemExit) as exc:
        lint_main([str(FIXTURES), "--select", "RL999"])
    assert exc.value.code == 2
    with pytest.raises(SystemExit) as exc:
        lint_main(["no/such/path"])
    assert exc.value.code == 2


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.code in out


def test_cli_rules_alias_selects_subset(capsys):
    assert lint_main([str(FIXTURES), "--rules", "RL010,RL011"]) == 1
    out = capsys.readouterr().out
    assert "RL010" in out and "RL011" in out
    assert "RL001" not in out and "RL002" not in out


def test_cli_github_format(capsys):
    assert lint_main([str(FIXTURES), "--format", "github", "--rules", "RL002"]) == 1
    out = capsys.readouterr().out
    assert "::error file=" in out and "title=RL002::" in out


def test_render_github_escapes_newlines():
    finding = Finding("a/b.py", 3, 7, "RL005", "line one\nline % two")
    out = render_github([finding])
    assert (
        "::error file=a/b.py,line=3,col=7,title=RL005::line one%0Aline %25 two"
        in out
    )


def test_cli_baseline_roundtrip(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    target = str(FIXTURES / "repro" / "runtime" / "rl002_bad.py")
    assert lint_main([target, "--write-baseline", str(baseline)]) == 0
    assert "wrote" in capsys.readouterr().out
    # Accepted findings no longer fail the run...
    assert lint_main([target, "--baseline", str(baseline)]) == 0
    assert "0 findings" in capsys.readouterr().out
    # ...but anything not in the baseline still does.
    runtime_dir = str(FIXTURES / "repro" / "runtime")
    assert lint_main([runtime_dir, "--baseline", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "RL001" in out and "RL002" not in out


def test_cli_baseline_is_line_insensitive(tmp_path, capsys):
    # Entries match on (path, rule, message); unrelated edits that shift
    # line numbers must not resurrect accepted findings.
    bad = FIXTURES / "repro" / "runtime" / "rl002_bad.py"
    work = tmp_path / "repro" / "runtime" / "mod.py"
    work.parent.mkdir(parents=True)
    work.write_text(bad.read_text())
    baseline = tmp_path / "baseline.json"
    assert lint_main([str(work), "--write-baseline", str(baseline)]) == 0
    work.write_text("# a new leading comment\n" + bad.read_text())
    assert lint_main([str(work), "--baseline", str(baseline)]) == 0
    capsys.readouterr()


def test_cli_rejects_unreadable_baseline():
    with pytest.raises(SystemExit) as exc:
        lint_main([str(SRC), "--baseline", "no/such/baseline.json"])
    assert exc.value.code == 2
