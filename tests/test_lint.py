"""Self-tests for the repro-lint static analyzer.

Fixture files under ``tests/lint_fixtures/`` mirror the package layout
(``repro/runtime/...``, ``repro/core/...``) so rule *scoping* is under
test along with the rules themselves: every known-bad snippet must trip
its rule at the right line, clean patterns and out-of-scope files must
stay silent, and the real source tree must lint clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import ALL_RULES, lint_paths, lint_source, rule_by_code
from repro.lint.__main__ import main as lint_main
from repro.lint.engine import PARSE_ERROR, Finding, render_json, render_text

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC = Path(__file__).parent.parent / "src"


def lint_fixture(name: str) -> list:
    return lint_paths([FIXTURES / "repro" / name], ALL_RULES)


def expected_lines(path: Path, code: str) -> list[int]:
    """Lines annotated ``-> RLxxx here`` point at the following statement."""
    lines = []
    for i, text in enumerate(path.read_text().splitlines(), start=1):
        if f"-> {code} here" in text:
            lines.append(i + 1)
    return lines


@pytest.mark.parametrize(
    "fixture, code",
    [
        ("runtime/rl001_bad.py", "RL001"),
        ("runtime/rl002_bad.py", "RL002"),
        ("core/rl003_bad.py", "RL003"),
        ("core/rl004_bad.py", "RL004"),
        ("core/rl005_bad.py", "RL005"),
        ("testkit/rl005_bad.py", "RL005"),
        ("core/rl006_bad.py", "RL006"),
        ("runtime/rl007_bad.py", "RL007"),
        ("runtime/rl008_bad.py", "RL008"),
        ("core/kernel/rl009_bad.py", "RL009"),
    ],
)
def test_bad_fixture_trips_rule_at_marked_lines(fixture, code):
    path = FIXTURES / "repro" / fixture
    findings = lint_fixture(fixture)
    assert findings, f"{fixture} produced no findings"
    got = [(f.rule, f.line) for f in findings if f.rule == code]
    marked = expected_lines(path, code)
    assert marked, f"{fixture} has no '-> {code} here' markers"
    assert sorted(line for _, line in got) == marked


def test_rl001_distinguishes_ownership_gaps():
    messages = sorted(f.message for f in lint_fixture("runtime/rl001_bad.py"))
    assert any("no owner" in m for m in messages)
    assert any("must define a close()" in m for m in messages)
    assert any("never unlink()s" in m for m in messages)
    assert any("release segments first" in m for m in messages)


@pytest.mark.parametrize(
    "fixture",
    [
        "runtime/rl001_ok.py",
        "runtime/rl007_ok.py",
        "runtime/rl008_ok.py",
        "core/kernel/rl009_ok.py",
        "experiments/scope_ok.py",
    ],
)
def test_clean_fixtures_produce_no_findings(fixture):
    assert lint_fixture(fixture) == []


def test_flow_controlled_sends_pass():
    findings = [
        f for f in lint_fixture("runtime/rl002_bad.py") if f.rule == "RL002"
    ]
    # Only the unbounded broadcast() loop fires; bounded() stays clean.
    assert len(findings) == 1


def test_noqa_suppression_is_code_specific():
    findings = lint_fixture("core/noqa_ok.py")
    # Everything is suppressed except the one wrong-code suppression.
    assert [f.rule for f in findings] == ["RL006"]
    path = FIXTURES / "repro" / "core" / "noqa_ok.py"
    (wrong_line,) = [
        i
        for i, text in enumerate(path.read_text().splitlines(), start=1)
        if "noqa[RL005]" in text and "np.empty" in text
    ]
    assert findings[0].line == wrong_line


def test_real_tree_is_clean():
    assert lint_paths([SRC], ALL_RULES) == []


def test_rules_scope_to_their_packages():
    # A runtime-only rule never fires on identical code under core/.
    source = Path(FIXTURES / "repro/runtime/rl002_bad.py").read_text()
    in_scope = lint_source(source, "x/repro/runtime/mod.py", ALL_RULES)
    out_of_scope = lint_source(source, "x/repro/core/mod.py", ALL_RULES)
    assert any(f.rule == "RL002" for f in in_scope)
    assert not any(f.rule == "RL002" for f in out_of_scope)


def test_rl009_scopes_to_kernel_package():
    # Identical code outside repro/core/kernel/ never trips RL009.
    source = (FIXTURES / "repro/core/kernel/rl009_bad.py").read_text()
    in_scope = lint_source(source, "x/repro/core/kernel/mod.py", ALL_RULES)
    out_of_scope = lint_source(source, "x/repro/core/mod.py", ALL_RULES)
    assert any(f.rule == "RL009" for f in in_scope)
    assert not any(f.rule == "RL009" for f in out_of_scope)


def test_syntax_error_becomes_parse_finding():
    findings = lint_source("def broken(:\n", "repro/core/x.py", ALL_RULES)
    assert len(findings) == 1
    assert findings[0].rule == PARSE_ERROR


def test_finding_format_and_json_roundtrip():
    finding = Finding("a/b.py", 3, 7, "RL005", "message text")
    assert finding.format() == "a/b.py:3:7: RL005 message text"
    payload = json.loads(render_json([finding]))
    assert payload["count"] == 1
    assert payload["findings"][0] == finding.to_dict()
    text = render_text([finding])
    assert text.splitlines() == ["a/b.py:3:7: RL005 message text", "1 finding"]


def test_rule_metadata_complete():
    codes = [rule.code for rule in ALL_RULES]
    assert codes == sorted(codes) and len(set(codes)) == len(codes)
    for rule in ALL_RULES:
        assert rule.code.startswith("RL")
        assert rule.name and rule.invariant
        assert rule_by_code(rule.code) is rule
    with pytest.raises(KeyError):
        rule_by_code("RL999")


# -- CLI ----------------------------------------------------------------
def test_cli_exit_codes(capsys):
    assert lint_main([str(SRC)]) == 0
    assert "0 findings" in capsys.readouterr().out
    assert lint_main([str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "RL001" in out and "findings" in out


def test_cli_json_output(capsys):
    assert lint_main([str(FIXTURES), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == len(payload["findings"]) > 0
    assert {f["rule"] for f in payload["findings"]} >= {"RL001", "RL002"}


def test_cli_select_filters_rules(capsys):
    assert lint_main([str(FIXTURES), "--select", "RL002"]) == 1
    payload = capsys.readouterr().out
    assert "RL002" in payload and "RL001" not in payload


def test_cli_rejects_unknown_rule_and_path():
    with pytest.raises(SystemExit) as exc:
        lint_main([str(FIXTURES), "--select", "RL999"])
    assert exc.value.code == 2
    with pytest.raises(SystemExit) as exc:
        lint_main(["no/such/path"])
    assert exc.value.code == 2


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.code in out
