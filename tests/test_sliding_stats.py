"""Tests for the Exponential Histogram sliding-window counter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.sliding_stats import ExponentialHistogram


def exact_window_count(events, window, upto):
    lo = max(0, upto - window + 1)
    return int(np.sum(events[lo : upto + 1]))


class TestBasics:
    def test_empty(self):
        eh = ExponentialHistogram(window=16)
        assert eh.estimate() == 0.0
        assert eh.time == 0
        assert eh.space == 0

    def test_few_events_exact(self):
        eh = ExponentialHistogram(window=100, k=8)
        for value in [0, 1, 0, 1, 1, 0]:
            eh.append(value)
        # With few events no merging happens: every bucket (including the
        # oldest) has size 1 and its event is provably in-window, so the
        # estimate is exact.
        assert eh.estimate() == pytest.approx(3.0)
        assert eh.time == 6

    def test_expiry(self):
        eh = ExponentialHistogram(window=4, k=8)
        eh.append(1)
        for _ in range(10):
            eh.append(0)
        assert eh.estimate() == 0.0

    def test_extend(self):
        eh = ExponentialHistogram(window=50, k=8)
        eh.extend(np.array([1, 0, 1, 1]))
        assert eh.time == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialHistogram(window=0)
        with pytest.raises(ValueError):
            ExponentialHistogram(window=4, k=0)

    def test_repr(self):
        assert "ExponentialHistogram" in repr(ExponentialHistogram(8))


class TestGuarantees:
    @pytest.mark.parametrize("k", [2, 4, 8, 16])
    def test_relative_error_bound_dense(self, k, rng):
        window = 500
        events = (rng.random(5000) < 0.4).astype(int)
        eh = ExponentialHistogram(window=window, k=k)
        for t, value in enumerate(events):
            eh.append(int(value))
            if t >= window and t % 97 == 0:
                exact = exact_window_count(events, window, t)
                if exact:
                    err = abs(eh.estimate() - exact) / exact
                    assert err <= 1.0 / k + 1e-9, (t, exact, eh.estimate())

    def test_space_logarithmic(self, rng):
        window = 4096
        eh = ExponentialHistogram(window=window, k=8)
        for value in (rng.random(3 * window) < 0.5).astype(int):
            eh.append(int(value))
        # O(k log N): generous explicit bound.
        assert eh.space <= (8 // 2 + 3) * (int(np.log2(window)) + 2)

    def test_bucket_sizes_are_powers_of_two(self, rng):
        eh = ExponentialHistogram(window=256, k=4)
        for value in (rng.random(1000) < 0.7).astype(int):
            eh.append(int(value))
        for size in eh.bucket_sizes():
            assert size & (size - 1) == 0

    def test_bucket_count_per_size_bounded(self, rng):
        eh = ExponentialHistogram(window=256, k=4)
        for value in (rng.random(1000) < 0.7).astype(int):
            eh.append(int(value))
        sizes = eh.bucket_sizes()
        for size in set(sizes):
            assert sizes.count(size) <= (4 + 1) // 2 + 2


@settings(max_examples=30, deadline=None)
@given(
    bits=st.lists(st.booleans(), min_size=1, max_size=400),
    window=st.integers(1, 120),
    k=st.integers(2, 12),
)
def test_property_relative_error(bits, window, k):
    events = np.array(bits, dtype=int)
    eh = ExponentialHistogram(window=window, k=k)
    for t, value in enumerate(events):
        eh.append(int(value))
    exact = exact_window_count(events, window, len(events) - 1)
    estimate = eh.estimate()
    if exact == 0:
        assert estimate <= 0.5
    else:
        # Error comes from the half-counted oldest bucket: at most 1/k
        # relatively once counts are non-trivial, and at most half an
        # event absolutely when the window holds almost nothing.
        assert abs(estimate - exact) <= max(0.5, exact / k) + 1e-9
