"""Property suite for the out-of-order buffer vs a literal oracle.

The oracle is a plain ``dict`` re-aggregated from scratch: timestamps to
``(value, count)``, combined with the aggregate function, sorted on
demand.  The treap must agree with it exactly after every operation —
values are dyadic (multiples of 1/1024 in a small range), so float
aggregation is exact and comparisons need no tolerance.  Every step also
runs ``check_invariants``, which brute-force recomputes the partial
aggregates the watermark machinery relies on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.aggregates import MAX, SUM
from repro.ingest import BinAggregate, OutOfOrderBuffer

# Small domains on purpose: collisions (duplicate timestamps) and
# adjacent ties must be common, not lucky.
timestamps = st.integers(0, 63)
values = st.integers(0, 8 * 1024).map(lambda q: q / 1024.0)


@st.composite
def op_sequences(draw):
    ops = []
    for _ in range(draw(st.integers(1, 40))):
        kind = draw(
            st.sampled_from(["insert", "insert", "bulk", "evict", "range"])
        )
        if kind == "insert":
            ops.append(("insert", draw(timestamps), draw(values)))
        elif kind == "bulk":
            k = draw(st.integers(0, 12))
            ops.append(
                (
                    "bulk",
                    [
                        (draw(timestamps), draw(values))
                        for _ in range(k)
                    ],
                )
            )
        elif kind == "evict":
            ops.append(("evict", draw(st.integers(0, 80))))
        else:
            lo = draw(st.integers(0, 70))
            ops.append(("range", lo, lo + draw(st.integers(0, 70))))
    return ops


class DictOracle:
    """Literal re-aggregation: the spec the treap must match."""

    def __init__(self, aggregate):
        self.aggregate = aggregate
        self.bins: dict[int, tuple[float, int]] = {}

    def insert(self, t: int, v: float) -> bool:
        if t in self.bins:
            old_v, old_c = self.bins[t]
            self.bins[t] = (self.aggregate.combine(old_v, v), old_c + 1)
            return False
        self.bins[t] = (v, 1)
        return True

    def evict_below(self, watermark: int) -> list[BinAggregate]:
        sealed = sorted(t for t in self.bins if t < watermark)
        return [
            BinAggregate(t, *self.bins.pop(t)) for t in sealed
        ]

    def range_value(self, lo: int, hi: int) -> float:
        inside = [v for t, (v, _) in self.bins.items() if lo <= t < hi]
        return (
            self.aggregate.reduce(np.array(inside, dtype=np.float64))
            if inside
            else self.aggregate.identity
        )

    def snapshot(self) -> list[BinAggregate]:
        return [
            BinAggregate(t, *self.bins[t]) for t in sorted(self.bins)
        ]

    @property
    def n_records(self) -> int:
        return sum(c for _, c in self.bins.values())


def _assert_matches(buf: OutOfOrderBuffer, oracle: DictOracle) -> None:
    buf.check_invariants()
    assert buf.bins() == oracle.snapshot()
    assert buf.n_bins == len(oracle.bins)
    assert buf.n_records == oracle.n_records
    ts = sorted(oracle.bins)
    assert buf.min_timestamp == (ts[0] if ts else None)
    assert buf.max_timestamp == (ts[-1] if ts else None)
    assert buf.total == oracle.range_value(0, 10**9)


@pytest.mark.parametrize("aggregate", [SUM, MAX], ids=["sum", "max"])
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=op_sequences())
def test_buffer_matches_literal_oracle(aggregate, ops):
    buf = OutOfOrderBuffer(aggregate)
    oracle = DictOracle(aggregate)
    for op in ops:
        if op[0] == "insert":
            _, t, v = op
            assert buf.insert(t, v) == oracle.insert(t, v)
        elif op[0] == "bulk":
            batch = op[1]
            ts = np.array([t for t, _ in batch], dtype=np.int64)
            vals = np.array([v for _, v in batch], dtype=np.float64)
            merged = sum(
                0 if oracle.insert(t, v) else 1 for t, v in batch
            )
            assert buf.bulk_insert(ts, vals) == merged
        elif op[0] == "evict":
            _, w = op
            assert buf.evict_below(w) == oracle.evict_below(w)
        else:
            _, lo, hi = op
            assert buf.range_value(lo, hi) == oracle.range_value(lo, hi)
        _assert_matches(buf, oracle)


@pytest.mark.parametrize("aggregate", [SUM, MAX], ids=["sum", "max"])
@settings(max_examples=40, deadline=None)
@given(
    batch=st.lists(st.tuples(timestamps, values), max_size=30),
    pre=st.lists(st.tuples(timestamps, values), max_size=10),
)
def test_bulk_insert_equals_loop_of_inserts(aggregate, batch, pre):
    """One straggler batch == the same records inserted one by one."""
    looped = OutOfOrderBuffer(aggregate)
    bulked = OutOfOrderBuffer(aggregate)
    for t, v in pre:
        looped.insert(t, v)
        bulked.insert(t, v)
    merged = 0
    for t, v in batch:
        merged += 0 if looped.insert(t, v) else 1
    ts = np.array([t for t, _ in batch], dtype=np.int64)
    vals = np.array([v for _, v in batch], dtype=np.float64)
    assert bulked.bulk_insert(ts, vals) == merged
    bulked.check_invariants()
    looped.check_invariants()
    assert bulked.bins() == looped.bins()
    assert bulked.n_bins == looped.n_bins
    assert bulked.n_records == looped.n_records
    assert bulked.total == looped.total
    assert bulked.min_timestamp == looped.min_timestamp
    assert bulked.max_timestamp == looped.max_timestamp


def test_exact_dyadic_ties():
    """Dyadic values aggregate exactly: 1/4 + 1/4 + 1/2 == 1.0, not ~1.0."""
    buf = OutOfOrderBuffer(SUM)
    buf.insert(5, 0.25)
    buf.insert(5, 0.25)
    buf.insert(5, 0.5)
    [sealed_bin] = buf.evict_below(6)
    assert sealed_bin == BinAggregate(5, 1.0, 3)


def test_eviction_order_and_partial_survival():
    buf = OutOfOrderBuffer(SUM)
    for t in (9, 2, 7, 4, 11):
        buf.insert(t, float(t))
    sealed = buf.evict_below(8)
    assert [b.timestamp for b in sealed] == [2, 4, 7]
    assert [b.timestamp for b in buf.bins()] == [9, 11]
    assert buf.evict_below(8) == []  # idempotent below the old watermark
    buf.check_invariants()


def test_empty_buffer_properties():
    buf = OutOfOrderBuffer(SUM)
    assert buf.n_bins == 0
    assert buf.n_records == 0
    assert buf.min_timestamp is None
    assert buf.max_timestamp is None
    assert buf.total == SUM.identity
    assert buf.evict_below(100) == []
    assert buf.bins() == []
    buf.check_invariants()
