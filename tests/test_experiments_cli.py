"""Tests for the experiments command-line entry point."""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.__main__ import main


class TestExperimentsCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig15" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_unknown_scale(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig15", "--scale", "galactic"])

    def test_registry_modules_importable(self):
        import importlib

        for module_name in EXPERIMENTS.values():
            module = importlib.import_module(
                f"repro.experiments.{module_name}"
            )
            assert hasattr(module, "run")
            assert hasattr(module, "main")
