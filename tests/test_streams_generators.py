"""Unit tests for the synthetic stream generators."""

import numpy as np
import pytest

from repro.streams.generators import (
    constant_stream,
    exponential_stream,
    planted_burst_stream,
    poisson_stream,
    uniform_stream,
)


class TestPoissonStream:
    def test_moments(self):
        data = poisson_stream(9.0, 50_000, seed=1)
        assert data.mean() == pytest.approx(9.0, rel=0.05)
        assert data.var() == pytest.approx(9.0, rel=0.1)

    def test_deterministic_by_seed(self):
        a = poisson_stream(3.0, 100, seed=5)
        b = poisson_stream(3.0, 100, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_instance_accepted(self):
        rng = np.random.default_rng(5)
        a = poisson_stream(3.0, 100, seed=rng)
        b = poisson_stream(3.0, 100, seed=np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_dtype_and_nonnegative(self):
        data = poisson_stream(2.0, 100, seed=0)
        assert data.dtype == np.float64
        assert (data >= 0).all()

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            poisson_stream(-1.0, 10)


class TestExponentialStream:
    def test_moments(self):
        data = exponential_stream(50.0, 50_000, seed=2)
        assert data.mean() == pytest.approx(50.0, rel=0.05)
        assert data.std() == pytest.approx(50.0, rel=0.05)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            exponential_stream(0.0, 10)

    def test_nonnegative(self):
        assert (exponential_stream(1.0, 1000, seed=3) >= 0).all()


class TestUniformConstant:
    def test_uniform_range(self):
        data = uniform_stream(1.0, 5.0, 1000, seed=4)
        assert data.min() >= 1.0 and data.max() < 5.0

    def test_uniform_invalid(self):
        with pytest.raises(ValueError):
            uniform_stream(-1.0, 5.0, 10)
        with pytest.raises(ValueError):
            uniform_stream(5.0, 5.0, 10)

    def test_constant(self):
        data = constant_stream(3.5, 7)
        assert (data == 3.5).all() and data.size == 7

    def test_constant_invalid(self):
        with pytest.raises(ValueError):
            constant_stream(-1.0, 5)


class TestPlantedBursts:
    def test_injection_adds_mass(self):
        background = np.zeros(100)
        data, applied = planted_burst_stream(background, [(10, 5, 3.0)])
        assert data[10:15].sum() == 15.0
        assert data[:10].sum() == 0.0
        assert applied == [(10, 5, 3.0)]

    def test_background_unmodified(self):
        background = np.zeros(10)
        planted_burst_stream(background, [(0, 2, 1.0)])
        assert background.sum() == 0.0

    def test_clipping_at_stream_end(self):
        data, applied = planted_burst_stream(np.zeros(10), [(8, 5, 1.0)])
        assert applied == [(8, 2, 1.0)]
        assert data.sum() == 2.0

    def test_invalid_injections(self):
        with pytest.raises(ValueError):
            planted_burst_stream(np.zeros(10), [(0, 0, 1.0)])
        with pytest.raises(ValueError):
            planted_burst_stream(np.zeros(10), [(0, 1, -1.0)])
        with pytest.raises(ValueError):
            planted_burst_stream(np.zeros(10), [(10, 1, 1.0)])

    def test_multiple_bursts_accumulate(self):
        data, _ = planted_burst_stream(
            np.zeros(10), [(2, 3, 1.0), (3, 3, 1.0)]
        )
        assert data[3] == 2.0
