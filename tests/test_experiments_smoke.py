"""Micro-scale smoke tests for the experiment modules.

Benches exercise the experiments at real scale; these tests just pin the
plumbing (tables well-formed, columns present, values sane) at a scale
small enough for the unit suite.
"""

import pytest

from repro.core.search import SearchParams
from repro.experiments.common import ExperimentScale
from repro.experiments.fig13_exponential_beta import run as run_fig13
from repro.experiments.fig17_histograms import run as run_fig17
from repro.experiments.table2_data_stats import run as run_table2

TINY = ExperimentScale(
    name="small",  # reuse the small-scale parameter grids
    stream_length=8_000,
    training_length=2_000,
    search_params=SearchParams(
        max_same_size_states=32, max_final_states=200, max_expansions=500
    ),
    max_window_cap=40,
)



class TestTinyScaleExperiments:
    def test_fig13_table_shape(self):
        table = run_fig13(TINY)
        assert table.headers[0] == "beta"
        assert len(table.rows) == 6
        for row in table.rows:
            assert row[1] > 0 and row[2] > 0  # SAT and SBT ops positive
        # The invariance claim holds even at tiny scale.
        sat = table.column("ops(SAT)")
        assert max(sat) <= min(sat) * 1.5

    def test_table2_has_paper_and_simulated_rows(self):
        table = run_table2(TINY)
        which = table.column("which")
        assert which.count("simulated") == 2
        assert which.count("paper") == 2

    def test_fig17_fractions_sum_to_one(self):
        table = run_fig17(TINY)
        for dataset in ("SDSS", "IBM"):
            fractions = [r[4] for r in table.rows if r[0] == dataset]
            assert sum(fractions) == pytest.approx(1.0, abs=0.02)
