"""Unit and quality tests for the state-space search."""

import numpy as np
import pytest

from repro.core.chunked import ChunkedDetector
from repro.core.naive import naive_detect
from repro.core.search import (
    BestFirstSearch,
    EmpiricalCostModel,
    NormalProbabilityModel,
    SearchParams,
    TheoreticalCostModel,
    exhaustive_search,
    greedy_search,
    train_structure,
)
from repro.core.search.state import generate_children, geometric_grid
from repro.core.structure import SATStructure
from repro.core.thresholds import FixedThresholds, NormalThresholds, all_sizes


class TestGeometricGrid:
    def test_small_all_present(self):
        assert geometric_grid(10) == tuple(range(1, 11))

    def test_contains_powers_of_two(self):
        grid = geometric_grid(4096)
        for p in (1, 2, 4, 64, 1024, 4096):
            assert p in grid

    def test_spacing_bounded_above_sixteen(self):
        # The grid is dense (every integer) up to 16 and geometrically
        # thinned above, with consecutive ratios bounded.
        grid = geometric_grid(10_000)
        coarse = [v for v in grid if v >= 16]
        ratios = [b / a for a, b in zip(coarse, coarse[1:])]
        assert max(ratios) < 1.35

    def test_empty(self):
        assert geometric_grid(0) == ()


class TestGenerateChildren:
    def test_children_are_valid_structures(self):
        base = SATStructure.from_pairs([(4, 2)])
        children = generate_children(base, max_size=16, min_size=0, max_window=20)
        assert children
        for child in children:
            assert child.num_levels == 2
            assert child.top.size <= 16
            assert child.top.shift % 2 == 0
            assert child.coverage > base.coverage

    def test_min_size_excludes_old_candidates(self):
        base = SATStructure.from_pairs([(4, 2)])
        first = generate_children(base, max_size=8, min_size=0, max_window=20)
        second = generate_children(base, max_size=16, min_size=8, max_window=20)
        first_sizes = {c.top.size for c in first}
        second_sizes = {c.top.size for c in second}
        assert first_sizes and second_sizes
        assert max(first_sizes) <= 8
        assert min(second_sizes) > 8

    def test_completion_sizes_added(self):
        # With max_window 19 a completing child 19 + s - 1 should exist
        # even off the geometric grid.
        base = SATStructure.from_pairs([(16, 1)])
        children = generate_children(
            base, max_size=40, min_size=0, max_window=19
        )
        assert any(c.covers(19) for c in children)

    def test_sbt_step_reachable(self):
        base = SATStructure.from_pairs([(2, 1), (4, 2)])
        children = generate_children(base, max_size=8, min_size=0, max_window=64)
        assert any(
            c.top.size == 8 and c.top.shift == 4 for c in children
        )


class TestBestFirstSearch:
    def _search(self, maxw=24, p=1e-3, **kw):
        rng = np.random.default_rng(11)
        data = rng.poisson(6.0, 4000).astype(float)
        th = NormalThresholds.from_data(data, p, all_sizes(maxw))
        model = TheoreticalCostModel(th, NormalProbabilityModel.from_data(data))
        return BestFirstSearch(th, model, SearchParams(**kw)), th, data

    def test_finds_valid_final_structure(self):
        search, th, _ = self._search()
        result = search.run()
        assert result.structure.covers(th.max_window)
        assert result.finals_seen >= 1
        assert result.normalized_cost > 0
        assert "levels=" in repr(result)

    def test_found_structure_detects_correctly(self):
        search, th, data = self._search()
        structure = search.run().structure
        got = ChunkedDetector(structure, th).detect(data)
        assert got == naive_detect(data, th)

    def test_expansion_cap_without_final_raises(self):
        # An expansion budget too small to ever reach a covering state is
        # an error, not a silent bad structure.
        search, _, _ = self._search(max_expansions=1, max_final_states=10**9)
        with pytest.raises(RuntimeError, match="max_expansions"):
            search.run()

    def test_expansions_bounded_by_cap(self):
        search, _, _ = self._search(max_expansions=200)
        result = search.run()
        assert result.states_expanded <= 200

    def test_max_window_one_returns_root(self):
        th = FixedThresholds({1: 5.0})
        model = TheoreticalCostModel(th, NormalProbabilityModel(1.0, 1.0))
        result = BestFirstSearch(th, model).run()
        assert result.structure.num_levels == 0

    def test_history_recorded(self):
        search, _, _ = self._search()
        result = search.run()
        assert result.history
        # Best-final cost never worsens as the search proceeds.
        costs = [c for _, c in result.history]
        assert costs == sorted(costs, reverse=True) or all(
            costs[i] >= costs[i + 1] - 1e-12 for i in range(len(costs) - 1)
        )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SearchParams(max_same_size_states=0)
        with pytest.raises(ValueError):
            SearchParams(max_final_states=0)
        with pytest.raises(ValueError):
            SearchParams(max_expansions=0)

    def test_within_factor_of_exhaustive_optimum(self):
        # Tiny instance where the true optimum is computable.
        rng = np.random.default_rng(13)
        data = rng.poisson(5.0, 2000).astype(float)
        th = NormalThresholds.from_data(data, 1e-2, all_sizes(6))
        model = TheoreticalCostModel(
            th, NormalProbabilityModel.from_data(data)
        )
        best, best_cost = exhaustive_search(th, model, size_bound=12)
        result = BestFirstSearch(
            th, model, SearchParams(max_final_states=500)
        ).run()
        assert result.normalized_cost <= best_cost * 1.35

    def test_empirical_cost_model_search(self):
        rng = np.random.default_rng(14)
        data = rng.poisson(5.0, 2000).astype(float)
        th = NormalThresholds.from_data(data, 1e-2, all_sizes(12))
        model = EmpiricalCostModel(data, th)
        result = BestFirstSearch(
            th,
            model,
            SearchParams(
                max_same_size_states=8, max_final_states=8, max_expansions=200
            ),
        ).run()
        assert result.structure.covers(12)


class TestStrategies:
    def _setup(self, maxw=12):
        rng = np.random.default_rng(15)
        data = rng.poisson(5.0, 2000).astype(float)
        th = NormalThresholds.from_data(data, 1e-2, all_sizes(maxw))
        model = TheoreticalCostModel(
            th, NormalProbabilityModel.from_data(data)
        )
        return th, model

    def test_greedy_reaches_final(self):
        th, model = self._setup()
        structure, cost = greedy_search(th, model)
        assert structure.covers(th.max_window)
        assert cost > 0

    def test_exhaustive_is_no_worse_than_greedy(self):
        th, model = self._setup(maxw=5)
        _, exhaustive_cost = exhaustive_search(th, model, size_bound=10)
        _, greedy_cost = greedy_search(th, model)
        assert exhaustive_cost <= greedy_cost + 1e-12

    def test_exhaustive_unreachable_bound(self):
        th, model = self._setup(maxw=12)
        with pytest.raises(RuntimeError):
            exhaustive_search(th, model, size_bound=4)


class TestTrainStructure:
    def test_end_to_end_correctness(self):
        rng = np.random.default_rng(16)
        train = rng.exponential(4.0, 3000)
        data = rng.exponential(4.0, 6000)
        th = NormalThresholds.from_data(train, 1e-3, all_sizes(30))
        structure = train_structure(train, th)
        assert structure.covers(30)
        got = ChunkedDetector(structure, th).detect(data)
        assert got == naive_detect(data, th)

    def test_normal_probability_variant(self):
        rng = np.random.default_rng(17)
        train = rng.poisson(5.0, 2000).astype(float)
        th = NormalThresholds.from_data(train, 1e-3, all_sizes(16))
        structure = train_structure(
            train, th, probability_model="normal"
        )
        assert structure.covers(16)

    def test_empirical_cost_variant(self):
        rng = np.random.default_rng(18)
        train = rng.poisson(5.0, 1500).astype(float)
        th = NormalThresholds.from_data(train, 1e-2, all_sizes(10))
        structure = train_structure(
            train,
            th,
            cost_model="empirical",
            params=SearchParams(
                max_same_size_states=8, max_final_states=8, max_expansions=150
            ),
        )
        assert structure.covers(10)

    def test_invalid_names(self):
        rng = np.random.default_rng(19)
        train = rng.poisson(5.0, 500).astype(float)
        th = NormalThresholds.from_data(train, 1e-2, all_sizes(4))
        with pytest.raises(ValueError):
            train_structure(train, th, cost_model="psychic")
        with pytest.raises(ValueError):
            train_structure(train, th, probability_model="psychic")
