"""Tests for the two-state bursty stream generator, and burst recall on it."""

import numpy as np
import pytest

from repro.core.chunked import ChunkedDetector
from repro.core.search import train_structure
from repro.core.thresholds import NormalThresholds, all_sizes
from repro.mining import burst_episodes
from repro.streams.kleinberg import kleinberg_stream


class TestGenerator:
    def test_intervals_match_elevated_regions(self):
        stream, intervals = kleinberg_stream(
            1.0, 50.0, 50_000, burst_start_probability=1e-3, seed=1
        )
        assert intervals
        for start, end in intervals:
            assert stream[start : end + 1].mean() > 10.0

    def test_quiet_outside_intervals(self):
        stream, intervals = kleinberg_stream(
            1.0, 50.0, 50_000, burst_start_probability=1e-3, seed=2
        )
        mask = np.zeros(stream.size, dtype=bool)
        for start, end in intervals:
            mask[start : end + 1] = True
        assert stream[~mask].mean() == pytest.approx(1.0, abs=0.1)

    def test_expected_burst_length(self):
        _, intervals = kleinberg_stream(
            1.0,
            20.0,
            300_000,
            burst_start_probability=1e-3,
            burst_stop_probability=0.05,
            seed=3,
        )
        lengths = [end - start + 1 for start, end in intervals]
        # Geometric with p = 0.05: mean 20 (truncation bias is small).
        assert np.mean(lengths) == pytest.approx(20.0, rel=0.4)

    def test_deterministic(self):
        a, ia = kleinberg_stream(1.0, 10.0, 5_000, seed=4)
        b, ib = kleinberg_stream(1.0, 10.0, 5_000, seed=4)
        np.testing.assert_array_equal(a, b)
        assert ia == ib

    def test_intervals_sorted_disjoint(self):
        _, intervals = kleinberg_stream(
            1.0, 10.0, 100_000, burst_start_probability=5e-3, seed=5
        )
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s1 <= e1 < s2 <= e2

    def test_validation(self):
        with pytest.raises(ValueError):
            kleinberg_stream(5.0, 5.0, 100)
        with pytest.raises(ValueError):
            kleinberg_stream(1.0, 5.0, 100, burst_start_probability=0.0)
        with pytest.raises(ValueError):
            kleinberg_stream(1.0, 5.0, 100, burst_stop_probability=0.0)


class TestDetectionRecall:
    def test_detector_recovers_automaton_bursts(self):
        stream, intervals = kleinberg_stream(
            2.0,
            40.0,
            60_000,
            burst_start_probability=1e-4,
            burst_stop_probability=2e-2,
            seed=6,
        )
        # Thresholds from a quiet training stream of the base process.
        train = np.random.default_rng(7).poisson(2.0, 10_000).astype(float)
        thresholds = NormalThresholds.from_data(train, 1e-7, all_sizes(128))
        structure = train_structure(train, thresholds)
        bursts = ChunkedDetector(structure, thresholds).detect(stream)
        episodes = burst_episodes(bursts, thresholds, gap=128)
        # Every ground-truth interval of meaningful length is recovered
        # by some episode.
        for start, end in intervals:
            if end - start + 1 < 3:
                continue  # too short to exceed any window threshold
            assert any(
                ep.start <= end and ep.end >= start for ep in episodes
            ), (start, end)
        # And no huge overreporting: episodes stay within ~3x the truth.
        assert len(episodes) <= 3 * max(1, len(intervals)) + 2
