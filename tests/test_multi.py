"""Tests for the multi-stream detector manager."""

import numpy as np
import pytest

from repro.core.multi import MultiStreamDetector
from repro.core.naive import naive_detect
from repro.core.sbt import shifted_binary_tree
from repro.core.search import SearchParams
from repro.core.thresholds import NormalThresholds, all_sizes

FAST = SearchParams(
    max_same_size_states=64, max_final_states=400, max_expansions=1500
)


@pytest.fixture
def streams(rng):
    return {
        "a": rng.poisson(5.0, 3000).astype(float),
        "b": rng.poisson(9.0, 3000).astype(float),
        "c": rng.exponential(4.0, 3000),
    }


class TestShared:
    def test_detects_each_stream_correctly(self, streams, rng):
        train = rng.poisson(7.0, 2000).astype(float)
        th = NormalThresholds.from_data(train, 1e-3, all_sizes(16))
        fleet = MultiStreamDetector.shared(
            streams, shifted_binary_tree(16), th
        )
        results = fleet.detect(streams, chunk_size=500)
        for name, series in streams.items():
            assert results[name] == naive_detect(series, th), name

    def test_names_sorted(self, streams, rng):
        train = rng.poisson(7.0, 500).astype(float)
        th = NormalThresholds.from_data(train, 1e-3, all_sizes(8))
        fleet = MultiStreamDetector.shared(
            streams, shifted_binary_tree(8), th
        )
        assert fleet.names == ("a", "b", "c")

    def test_total_operations_accumulates(self, streams, rng):
        train = rng.poisson(7.0, 500).astype(float)
        th = NormalThresholds.from_data(train, 1e-3, all_sizes(8))
        fleet = MultiStreamDetector.shared(
            streams, shifted_binary_tree(8), th
        )
        fleet.detect(streams)
        per_stream = [
            fleet.detector(name).counters.total_operations
            for name in fleet.names
        ]
        assert fleet.total_operations() == sum(per_stream)
        assert all(ops > 0 for ops in per_stream)


class TestPerStream:
    def test_each_stream_gets_own_detector(self, streams):
        training = {name: s[:1500] for name, s in streams.items()}
        fleet = MultiStreamDetector.per_stream(
            training, 1e-3, all_sizes(16), search_params=FAST
        )
        results = fleet.detect(streams)
        for name, series in streams.items():
            th = fleet.detector(name).thresholds
            assert results[name] == naive_detect(series, th), name
        # Thresholds differ across differently-scaled streams.
        assert fleet.detector("a").thresholds.threshold(4) != (
            fleet.detector("b").thresholds.threshold(4)
        )


class TestInterface:
    def _small_fleet(self, rng):
        train = rng.poisson(5.0, 500).astype(float)
        th = NormalThresholds.from_data(train, 1e-2, all_sizes(8))
        return MultiStreamDetector.shared(
            ["x", "y"], shifted_binary_tree(8), th
        )

    def test_unknown_stream_rejected(self, rng):
        fleet = self._small_fleet(rng)
        with pytest.raises(KeyError, match="unknown streams"):
            fleet.process({"zzz": np.ones(4)})
        with pytest.raises(KeyError):
            fleet.detect({"zzz": np.ones(4)})

    def test_ragged_feeding(self, rng):
        fleet = self._small_fleet(rng)
        fleet.process({"x": np.ones(10)})  # y gets nothing this round
        fleet.process({"x": np.ones(5), "y": np.ones(7)})
        tails = fleet.finish()
        assert set(tails) == {"x", "y"}

    def test_finish_twice_raises(self, rng):
        fleet = self._small_fleet(rng)
        fleet.finish()
        with pytest.raises(RuntimeError):
            fleet.finish()
        with pytest.raises(RuntimeError):
            fleet.process({"x": np.ones(2)})

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            MultiStreamDetector({})

    def test_detect_with_unequal_lengths(self, rng):
        train = rng.poisson(5.0, 500).astype(float)
        th = NormalThresholds.from_data(train, 1e-2, all_sizes(8))
        fleet = MultiStreamDetector.shared(
            ["x", "y"], shifted_binary_tree(8), th
        )
        data = {
            "x": rng.poisson(5.0, 1000).astype(float),
            "y": rng.poisson(5.0, 2500).astype(float),
        }
        results = fleet.detect(data, chunk_size=300)
        for name in data:
            assert results[name] == naive_detect(data[name], th)
