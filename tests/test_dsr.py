"""Unit tests for detection plans and the filter refinement."""

import numpy as np
import pytest

from repro.core.dsr import build_plans, find_triggered
from repro.core.opcount import OpCounters
from repro.core.sbt import shifted_binary_tree
from repro.core.structure import SATStructure
from repro.core.thresholds import FixedThresholds, NormalThresholds, all_sizes


class TestBuildPlans:
    def test_plan_geometry(self):
        structure = SATStructure.from_pairs([(4, 2), (10, 4)])
        th = NormalThresholds(5.0, 2.0, 1e-3, all_sizes(7))
        plans = build_plans(structure, th)
        assert len(plans) == 2
        assert (plans[0].lo, plans[0].hi) == (2, 3)
        assert (plans[1].lo, plans[1].hi) == (4, 7)
        assert list(plans[0].sizes) == [2, 3]
        assert list(plans[1].sizes) == [4, 5, 6, 7]

    def test_min_threshold_is_range_min(self):
        structure = SATStructure.from_pairs([(4, 2), (10, 4)])
        th = FixedThresholds({2: 9.0, 3: 7.0, 5: 4.0, 7: 6.0})
        plans = build_plans(structure, th)
        assert plans[0].min_threshold == 7.0
        assert plans[1].min_threshold == 4.0
        assert not plans[0].monotone  # 9.0 then 7.0 decreases
        assert plans[1].monotone  # 4.0 then 6.0 increases

    def test_inactive_level(self):
        structure = SATStructure.from_pairs([(4, 2), (10, 4)])
        th = FixedThresholds({2: 1.0, 3: 2.0})  # nothing for level 2
        plans = build_plans(structure, th)
        assert plans[0].active
        assert not plans[1].active
        assert plans[1].min_threshold == float("inf")

    def test_coverage_check(self):
        with pytest.raises(ValueError, match="coverage"):
            build_plans(
                SATStructure.from_pairs([(4, 2)]), FixedThresholds({9: 1.0})
            )

    def test_dsr_cells(self):
        structure = SATStructure.from_pairs([(4, 2), (10, 4)])
        th = NormalThresholds(5.0, 2.0, 1e-3, all_sizes(7))
        plans = build_plans(structure, th)
        assert plans[0].dsr_cells == 2 * 2
        assert plans[1].dsr_cells == 4 * 4

    def test_sizes_tile_across_plans(self):
        structure = shifted_binary_tree(100)
        th = NormalThresholds(5.0, 2.0, 1e-4, all_sizes(100))
        plans = build_plans(structure, th)
        covered = sorted(
            int(w) for plan in plans for w in plan.sizes
        )
        assert covered == list(range(2, 101))


class TestFindTriggered:
    def _plan(self, sizes, thresholds):
        structure = SATStructure.from_pairs([(max(sizes) + 2, 1)])
        th = FixedThresholds(dict(zip(sizes, thresholds)))
        return build_plans(structure, th)[0]

    def test_monotone_prefix(self):
        plan = self._plan([2, 3, 4, 5], [10.0, 20.0, 30.0, 40.0])
        counters = OpCounters(1)
        sizes, fs = find_triggered(plan, 25.0, counters)
        assert list(sizes) == [2, 3]
        assert list(fs) == [10.0, 20.0]

    def test_monotone_all_triggered(self):
        plan = self._plan([2, 3], [10.0, 20.0])
        counters = OpCounters(1)
        sizes, _ = find_triggered(plan, 1e9, counters)
        assert list(sizes) == [2, 3]

    def test_monotone_exact_boundary(self):
        plan = self._plan([2, 3], [10.0, 20.0])
        counters = OpCounters(1)
        sizes, _ = find_triggered(plan, 20.0, counters)
        assert list(sizes) == [2, 3]  # f(h) <= value is inclusive

    def test_non_monotone_subset(self):
        plan = self._plan([2, 3, 4], [30.0, 10.0, 20.0])
        assert not plan.monotone
        counters = OpCounters(1)
        sizes, fs = find_triggered(plan, 15.0, counters)
        assert list(sizes) == [3]
        assert list(fs) == [10.0]

    def test_comparison_accounting(self):
        plan = self._plan([2, 3, 4, 5], [10.0, 20.0, 30.0, 40.0])
        counters = OpCounters(1)
        find_triggered(plan, 25.0, counters)
        # Monotone refinement charges bit_length(4) = 3 comparisons.
        assert counters.filter_comparisons[1] == 3
        plan2 = self._plan([2, 3, 4], [30.0, 10.0, 20.0])
        counters2 = OpCounters(1)
        find_triggered(plan2, 15.0, counters2)
        # Linear scan charges one comparison per size.
        assert counters2.filter_comparisons[1] == 3
