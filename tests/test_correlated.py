"""Unit tests for the correlated stock-universe generator."""

import numpy as np
import pytest

from repro.streams.correlated import DEFAULT_SECTORS, BurstEvent, StockUniverse


class TestUniverseShape:
    def test_tickers_cover_all_sectors(self):
        uni = StockUniverse()
        assert set(uni.tickers) == {
            t for members in DEFAULT_SECTORS.values() for t in members
        }

    def test_sector_of(self):
        uni = StockUniverse()
        assert uni.sector_of("MSFT") == "tech"
        assert uni.sector_of("PG") == "consumer"
        with pytest.raises(KeyError):
            uni.sector_of("ZZZZ")

    def test_generate_shapes(self):
        uni = StockUniverse(seed=1)
        data, events = uni.generate(5000)
        assert set(data) == set(uni.tickers)
        for series in data.values():
            assert series.size == 5000
            assert (series >= 0).all()
        assert all(isinstance(e, BurstEvent) for e in events)

    def test_deterministic(self):
        a, ea = StockUniverse(seed=2).generate(3000)
        b, eb = StockUniverse(seed=2).generate(3000)
        assert ea == eb
        for ticker in a:
            np.testing.assert_array_equal(a[ticker], b[ticker])


class TestEventInjection:
    def _forced_universe(self, kind_rate):
        # High event rate so a short stream almost surely has events.
        return StockUniverse(
            seed=3,
            market_event_rate=kind_rate.get("market", 0.0),
            sector_event_rate=kind_rate.get("sector", 0.0),
            single_event_rate=kind_rate.get("single", 0.0),
        )

    def test_sector_events_lift_members_only(self):
        uni = self._forced_universe({"sector": 2e-4})
        data, events = uni.generate(20_000)
        sector_events = [e for e in events if e.kind == "sector"]
        assert sector_events
        e = sector_events[0]
        assert set(e.members) == set(uni.sectors[uni.sector_of(e.members[0])])

    def test_market_events_hit_everyone(self):
        uni = self._forced_universe({"market": 2e-4})
        _, events = uni.generate(20_000)
        market = [e for e in events if e.kind == "market"]
        assert market
        assert set(market[0].members) == set(uni.tickers)

    def test_single_events_hit_one(self):
        uni = self._forced_universe({"single": 2e-4})
        _, events = uni.generate(20_000)
        singles = [e for e in events if e.kind == "single"]
        assert singles
        assert all(len(e.members) == 1 for e in singles)

    def test_events_magnify_volume(self):
        uni = StockUniverse(
            seed=4,
            market_event_rate=0.0,
            sector_event_rate=0.0,
            single_event_rate=1e-4,
            magnitude_range=(50.0, 60.0),
        )
        data, events = uni.generate(20_000)
        assert events
        e = events[0]
        ticker = e.members[0]
        stop = min(e.start + e.duration, 20_000)
        inside = data[ticker][e.start : stop].mean()
        outside = np.delete(data[ticker], slice(e.start, stop)).mean()
        assert inside > 5 * outside

    def test_event_durations_in_range(self):
        uni = self._forced_universe({"sector": 2e-4, "single": 2e-4})
        _, events = uni.generate(20_000)
        for e in events:
            assert uni.duration_range[0] <= e.duration < uni.duration_range[1]
