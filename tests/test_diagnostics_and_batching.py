"""Tests for the diagnose() report and the batched-alarm DSR path."""

import numpy as np
import pytest

from repro.core.analysis import diagnose
from repro.core.chunked import ChunkedDetector
from repro.core.detector import StreamingDetector
from repro.core.sbt import shifted_binary_tree
from repro.core.thresholds import FixedThresholds, NormalThresholds, all_sizes


class TestDiagnose:
    @pytest.fixture
    def run(self, rng):
        data = rng.poisson(8.0, 10_000).astype(float)
        th = NormalThresholds.from_data(data[:3000], 1e-4, all_sizes(32))
        structure = shifted_binary_tree(32)
        d = ChunkedDetector(structure, th)
        d.detect(data)
        return structure, th, d

    def test_one_line_per_level(self, run):
        structure, th, d = run
        text = diagnose(structure, th, d.counters)
        assert len(text.splitlines()) == structure.num_levels + 1

    def test_prediction_column_optional(self, run):
        structure, th, d = run
        without = diagnose(structure, th, d.counters)
        with_pred = diagnose(
            structure, th, d.counters, mu=8.0, sigma=np.sqrt(8.0)
        )
        assert "pred" not in without
        assert "pred" in with_pred

    def test_prediction_tracks_measurement(self, run):
        # The per-level prediction should be close to the measured alarm
        # probability on well-behaved Poisson data (spot-check one level).
        structure, th, d = run
        from repro.core.analysis import level_alarm_probabilities

        predicted = level_alarm_probabilities(
            structure, th, 8.0, np.sqrt(8.0)
        )
        measured = d.counters.alarm_probabilities()
        mid = structure.num_levels // 2
        assert measured[mid] == pytest.approx(predicted[mid], abs=0.1)

    def test_ops_shares_sum_to_about_one(self, run):
        structure, th, d = run
        text = diagnose(structure, th, d.counters)
        shares = [
            float(line.rsplit(None, 1)[-1].rstrip("%"))
            for line in text.splitlines()[1:]
        ]
        # Level 0 ops are excluded from the listing, so <= 100.
        assert 0 < sum(shares) <= 100.0


class TestAlarmBatching:
    def test_batch_boundary_parity(self, rng):
        # Force tiny alarm batches so a single chunk spans many batches;
        # results must not depend on the batch size.
        data = rng.poisson(10.0, 4000).astype(float)
        th = NormalThresholds.from_data(data[:1000], 1e-2, all_sizes(24))
        structure = shifted_binary_tree(24)
        normal = ChunkedDetector(structure, th)
        want = normal.detect(data)
        tiny = ChunkedDetector(structure, th)
        tiny._ALARM_BATCH = 3
        got = tiny.detect(data)
        assert got == want
        assert tiny.counters.as_dict() == normal.counters.as_dict()

    def test_batched_path_matches_streaming_under_alarm_saturation(self):
        # Every node alarms: the batched path must still agree exactly.
        data = np.full(1200, 10.0)
        th = FixedThresholds({w: 2.0 * w for w in range(2, 16)})
        structure = shifted_binary_tree(15)
        ref = StreamingDetector(structure, th)
        want = ref.detect(data)
        chk = ChunkedDetector(structure, th)
        got = chk.detect(data, chunk_size=100)
        assert got == want
        assert chk.counters.as_dict() == ref.counters.as_dict()

    def test_single_alarm_batch(self, rng):
        # One isolated alarm exercises the batch path with a == 1.
        data = np.zeros(600)
        data[400:404] = 50.0
        # 160 excludes the 3-of-4 overlap windows (sum 150), leaving only
        # the exact injected window (sum 200).
        th = FixedThresholds({4: 160.0})
        structure = shifted_binary_tree(4)
        chk = ChunkedDetector(structure, th)
        got = chk.detect(data)
        assert got.keys() == {(403, 4)}
        assert chk.counters.total_alarms >= 1
