"""Tests for the dense-pyramid detector and the embedding diagram."""

import numpy as np
import pytest

from repro.core.naive import naive_detect, naive_operation_count
from repro.core.pyramid import embedding_diagram, pyramid_detect
from repro.core.sbt import shifted_binary_tree
from repro.core.structure import SATStructure
from repro.core.thresholds import FixedThresholds, NormalThresholds, all_sizes


class TestPyramidDetect:
    def test_matches_naive(self, rng):
        data = rng.poisson(5.0, 1500).astype(float)
        th = NormalThresholds.from_data(data[:400], 1e-3, all_sizes(20))
        bursts, ops = pyramid_detect(data, th)
        assert bursts == naive_detect(data, th)
        assert ops > 0

    def test_sparse_sizes_fewer_comparisons(self, rng):
        data = rng.poisson(5.0, 1000).astype(float)
        dense = NormalThresholds.from_data(data[:300], 1e-2, all_sizes(16))
        sparse = NormalThresholds.from_data(data[:300], 1e-2, [8, 16])
        _, dense_ops = pyramid_detect(data, dense)
        _, sparse_ops = pyramid_detect(data, sparse)
        # Same updates (the pyramid is dense either way), fewer compares.
        assert sparse_ops < dense_ops

    def test_cost_comparable_to_naive(self, rng):
        # The dense pyramid is the "naive with sharing" extreme: ~maxw
        # updates per point plus one comparison per size of interest.
        data = rng.poisson(5.0, 2000).astype(float)
        th = NormalThresholds.from_data(data[:500], 1e-2, all_sizes(32))
        _, ops = pyramid_detect(data, th)
        assert ops <= naive_operation_count(data.size, 32)

    def test_empty_stream(self):
        th = FixedThresholds({2: 1.0})
        bursts, ops = pyramid_detect(np.empty(0), th)
        assert len(bursts) == 0


class TestEmbeddingDiagram:
    def test_row_per_level_top_first(self):
        sbt = shifted_binary_tree(8)
        text = embedding_diagram(sbt, duration=16)
        lines = text.splitlines()
        assert len(lines) == len(sbt.levels)
        assert "level  4" in lines[0]
        assert "level  0" in lines[-1]

    def test_node_marks_follow_shift(self):
        structure = SATStructure.from_pairs([(4, 2)])
        text = embedding_diagram(structure, duration=8)
        level1 = text.splitlines()[0]
        marks = level1.split(": ")[1]
        assert marks == ".N.N.N.N"

    def test_level0_every_point(self):
        text = embedding_diagram(shifted_binary_tree(4), duration=6)
        assert text.splitlines()[-1].endswith("NNNNNN")
