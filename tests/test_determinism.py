"""Determinism of the parallel runtime under scheduling freedom.

The shared-memory pool makes three promises that scheduling must not be
able to break: the worker count is unobservable (1, 2 and 4 workers
produce byte-identical results), the order streams are registered and
fed in is unobservable (any permutation produces byte-identical
results), and the detection kernel backend is unobservable (the NumPy
fallback and — when installed — the compiled numba kernel produce
byte-identical results).  Dyadic testkit streams make "byte-identical"
literal — every aggregate is exact in float64, so we compare burst
values and counter arrays bit for bit, with no tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernel import numba_available
from repro.runtime import ParallelMultiStreamDetector
from repro.testkit import random_case

WORKER_COUNTS = (1, 2, 4)

#: Every kernel backend usable in this environment.
BACKENDS = ("numpy",) + (("numba",) if numba_available() else ())


def _portfolio():
    """Six distinct dyadic streams sharing one detector spec."""
    case = None
    index = 0
    while case is None or case.stream.size < 400 or not case.refine_filter:
        rng = np.random.default_rng([404, index])
        case = random_case(rng, max_points=900)
        index += 1
    data = {
        f"s{i}": np.roll(case.stream, 31 * i + i * i)
        for i in range(6)
    }
    return case, data


def _burst_bytes(bursts):
    """Canonical byte-exact encoding of a burst list."""
    return tuple(
        (b.start, b.end, b.size, float(b.value).hex()) for b in bursts
    )


def _run(case, data, names, workers, backend="auto"):
    det = ParallelMultiStreamDetector.shared(
        names,
        case.spec.structure,
        case.spec.thresholds,
        workers=workers,
        aggregate=case.spec.aggregate,
        refine_filter=case.refine_filter,
        backend=backend,
    )
    with det:
        found = det.detect(
            {name: data[name] for name in names}, chunk_size=173
        )
        merged = det.merged_counters()
    return (
        {name: _burst_bytes(found[name]) for name in names},
        merged,
    )


def _counter_bytes(counters):
    return (
        counters.updates.tobytes(),
        counters.filter_comparisons.tobytes(),
        counters.alarms.tobytes(),
        counters.search_cells.tobytes(),
        counters.bursts,
    )


class TestParallelDeterminism:
    @pytest.fixture(scope="class")
    def reference(self):
        case, data = _portfolio()
        bursts, merged = _run(case, data, sorted(data), "serial")
        return case, data, bursts, merged

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_worker_count_is_unobservable(self, reference, workers):
        case, data, ref_bursts, ref_merged = reference
        bursts, merged = _run(case, data, sorted(data), workers)
        assert bursts == ref_bursts
        assert _counter_bytes(merged) == _counter_bytes(ref_merged)

    @pytest.mark.parametrize("order_seed", [1, 2, 3])
    def test_insertion_order_is_unobservable(self, reference, order_seed):
        case, data, ref_bursts, ref_merged = reference
        names = sorted(data)
        np.random.default_rng(order_seed).shuffle(names)
        assert names != sorted(data)  # the permutation is real
        bursts, merged = _run(case, data, names, 2)
        assert bursts == ref_bursts
        assert _counter_bytes(merged) == _counter_bytes(ref_merged)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", ["serial", 2])
    def test_kernel_backend_is_unobservable(
        self, reference, backend, workers
    ):
        case, data, ref_bursts, ref_merged = reference
        bursts, merged = _run(
            case, data, sorted(data), workers, backend=backend
        )
        assert bursts == ref_bursts
        assert _counter_bytes(merged) == _counter_bytes(ref_merged)
