"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that legacy
(non-PEP-660) editable installs work in offline environments whose
setuptools predates bundled wheel support.
"""

from setuptools import setup

setup()
