"""Raw detector throughput: chunked vs streaming vs naive.

Not a paper figure — the engineering baseline behind all of them.  The
workload is the paper's favourable regime (exponential data, rare
bursts): the vectorized detector should sustain hundreds of thousands of
points per second; the pure-Python reference detector is the readable
semantics oracle, one to two orders of magnitude slower; the naive
baseline pays O(k) vectorized work per point regardless of data.
"""

import numpy as np
import pytest

from repro.core.chunked import ChunkedDetector
from repro.core.detector import StreamingDetector
from repro.core.naive import NaiveDetector
from repro.core.search import train_structure
from repro.core.thresholds import NormalThresholds, all_sizes

MAX_WINDOW = 128
N_FAST = 400_000
N_SLOW = 20_000


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(77)
    train = rng.exponential(100.0, 10_000)
    data = rng.exponential(100.0, N_FAST)
    thresholds = NormalThresholds.from_data(train, 1e-7, all_sizes(MAX_WINDOW))
    structure = train_structure(train, thresholds)
    return structure, thresholds, data


def test_chunked_detector_throughput(benchmark, workload):
    structure, thresholds, data = workload

    def detect():
        return ChunkedDetector(structure, thresholds).detect(data)

    bursts = benchmark.pedantic(detect, rounds=3, iterations=1)
    rate = data.size / benchmark.stats.stats.mean
    print(
        f"\nchunked: {data.size:,d} points, {len(bursts)} bursts, "
        f"{rate:,.0f} points/s"
    )
    assert rate > 100_000  # the vectorized path must stay fast


def test_streaming_detector_throughput(benchmark, workload):
    structure, thresholds, data = workload
    small = data[:N_SLOW]

    def detect():
        return StreamingDetector(structure, thresholds).detect(small)

    bursts = benchmark.pedantic(detect, rounds=1, iterations=1)
    print(f"\nstreaming: {small.size:,d} points, {len(bursts)} bursts")


def test_naive_detector_throughput(benchmark, workload):
    _structure, thresholds, data = workload
    small = data[:N_SLOW]

    def detect():
        return NaiveDetector(thresholds).detect(small)

    bursts = benchmark.pedantic(detect, rounds=1, iterations=1)
    print(f"\nnaive: {small.size:,d} points, {len(bursts)} bursts")
