"""Bench: Fig. 14 — burst-probability sweep on Poisson data."""

from repro.experiments.fig14_poisson_threshold import run

from _bench_utils import run_experiment


def test_fig14_poisson_threshold(benchmark, scale):
    table = run_experiment(benchmark, run, scale)
    sat = table.column("ops(SAT)")
    sbt = table.column("ops(SBT)")
    speedup = table.column("speedup")
    assert all(s <= b * 1.05 for s, b in zip(sat, sbt))
    # Paper shape: the SAT advantage grows as p shrinks (rows are ordered
    # from large p to small p).
    assert speedup[-1] > speedup[0]
    # SAT alarm probability stays below the SBT's saturated filter.
    assert all(
        a <= b + 1e-9
        for a, b in zip(table.column("alarm(SAT)"), table.column("alarm(SBT)"))
    )
