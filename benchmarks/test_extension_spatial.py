"""Bench: the §7 spatial extension — adapted vs fixed grid vs naive.

Not a paper figure (the paper proposes this as future work); the bench
quantifies the extension's value in the disease-surveillance regime:
sparse background counts, one planted outbreak, regions up to 32x32.
The detailed search batches all of a level's alarms per (span-group,
size), mirroring the 1-D detector's alarm batching, so wall times track
the operation counts.
"""

import numpy as np
import pytest

from repro.core.thresholds import all_sizes
from repro.spatial import (
    SpatialDetector,
    SpatialNormalThresholds,
    naive_spatial_detect,
    spatial_binary_structure,
    train_spatial_structure,
)

MAX_REGION = 32


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(1234)
    train = rng.poisson(0.05, (160, 160)).astype(float)
    grid = rng.poisson(0.05, (256, 256)).astype(float)
    grid[100:112, 60:72] += rng.poisson(1.1, (12, 12))
    thresholds = SpatialNormalThresholds.from_grid(
        train, 1e-6, all_sizes(MAX_REGION)
    )
    return train, grid, thresholds


def test_spatial_adapted_structure(benchmark, workload):
    train, grid, thresholds = workload
    structure = train_spatial_structure(train, thresholds)

    def detect():
        d = SpatialDetector(structure, thresholds)
        return d, d.detect(grid)

    detector, bursts = benchmark.pedantic(detect, rounds=2, iterations=1)
    print(
        f"\nadapted: {detector.counters.total_operations:,d} ops, "
        f"{len(bursts)} burst regions"
    )
    # Correctness against the per-size baseline.
    assert bursts == naive_spatial_detect(grid, thresholds)
    # The adapted structure clearly beats both baselines here.
    binary = SpatialDetector(spatial_binary_structure(MAX_REGION), thresholds)
    binary.detect(grid)
    assert (
        detector.counters.total_operations
        < binary.counters.total_operations
    )
    naive_ops = 2 * grid.size * MAX_REGION
    assert detector.counters.total_operations * 2 < naive_ops


def test_spatial_fixed_grid(benchmark, workload):
    _train, grid, thresholds = workload
    structure = spatial_binary_structure(MAX_REGION)

    def detect():
        d = SpatialDetector(structure, thresholds)
        return d.detect(grid)

    bursts = benchmark.pedantic(detect, rounds=2, iterations=1)
    print(f"\nfixed grid: {len(bursts)} burst regions")


def test_spatial_naive(benchmark, workload):
    _train, grid, thresholds = workload

    def detect():
        return naive_spatial_detect(grid, thresholds)

    bursts = benchmark.pedantic(detect, rounds=2, iterations=1)
    print(f"\nnaive: {len(bursts)} burst regions")
