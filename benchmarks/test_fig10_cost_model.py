"""Bench: Fig. 10 — theoretical vs empirical cost model."""

from repro.experiments.fig10_cost_model import run

from _bench_utils import run_experiment


def test_fig10_cost_model(benchmark, scale):
    table = run_experiment(benchmark, run, scale)
    theo = table.column("measured(theo)")
    emp = table.column("measured(emp)")
    ratios = table.column("pred/meas")
    search_theo = table.column("search_s(theo)")
    search_emp = table.column("search_s(emp)")
    # Paper point 1: the theoretical model tracks the actual cost.
    assert all(0.6 <= r <= 1.5 for r in ratios), ratios
    # Paper point 2: theoretical-model structures perform at least as
    # well overall, at a fraction of the search cost.
    assert sum(theo) <= sum(emp) * 1.2
    assert sum(search_theo) < sum(search_emp)
