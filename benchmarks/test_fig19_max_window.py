"""Bench: Fig. 19 — maximum-window-size sweep on the surrogates."""

from repro.experiments.fig19_max_window import run

from _bench_utils import run_experiment


def test_fig19_max_window(benchmark, scale):
    table = run_experiment(benchmark, run, scale)
    for dataset in ("SDSS", "IBM"):
        rows = [r for r in table.rows if r[0] == dataset]
        sat = [r[2] for r in rows]
        sbt = [r[3] for r in rows]
        speedup = [r[4] for r in rows]
        # Costs grow with the window range for both structures...
        assert sbt[-1] > sbt[0], dataset
        assert sat[-1] > sat[0], dataset
        # ...but the SAT grows more slowly: the speedup at the largest
        # window beats the speedup at the smallest (paper's Fig. 19).
        assert speedup[-1] > speedup[0], dataset
