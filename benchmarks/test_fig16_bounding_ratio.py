"""Bench: Fig. 16 — bounding ratios and per-level alarm probabilities."""

import math

from repro.experiments.fig16_bounding_ratio import run, run_alarm_by_level

from _bench_utils import run_experiment


def test_fig16_bounding_ratio_and_alarms(benchmark, scale):
    table = run_experiment(benchmark, run, scale)
    sbt_col = [r for r in table.column("SBT") if r != ""]
    # Paper: the SBT's ratio is ~4 at the higher levels, by construction.
    assert math.isclose(sbt_col[-1], 4.0, rel_tol=0.1)
    # Every SAT column ends with a ratio well below the SBT's 4 — the
    # adaptation drives T toward 1 at the large-window levels.
    for header in table.headers[2:]:
        col = [r for r in table.column(header) if r != ""]
        assert col[-1] < 2.5, header

    # Fig. 16b — measured per-level alarm probabilities.
    table_b = run_alarm_by_level(scale)
    print()
    print(table_b)
    sat = [v for v in table_b.column("SAT") if v != ""]
    sbt = [v for v in table_b.column("SBT") if v != ""]
    # Paper: the SBT saturates (alarm ~1) at its top levels; the SAT
    # holds every level's alarm probability low.
    assert max(sbt[-3:]) > 0.9
    assert max(sat) < 0.6
