"""Bench: the §7 adaptive extension — static vs adaptive on drifting data.

Not a paper figure (the paper names time-evolving streams as future
work).  The workload drifts from a busy regime to a quiet one; the static
detector keeps its mistuned structure, the adaptive detector retrains.
Semantics are identical (asserted); the bench quantifies the cost gap.
"""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveConfig, AdaptiveDetector
from repro.core.chunked import ChunkedDetector
from repro.core.search import SearchParams, train_structure
from repro.core.thresholds import NormalThresholds, all_sizes
from repro.streams.generators import exponential_stream

FAST_SEARCH = SearchParams(
    max_same_size_states=128, max_final_states=2_000, max_expansions=5_000
)


@pytest.fixture(scope="module")
def workload():
    a = exponential_stream(100.0, 50_000, seed=51)
    b = exponential_stream(55.0, 150_000, seed=52)
    stream = np.concatenate((a, b))
    train = a[:10_000]
    thresholds = NormalThresholds.from_data(train, 1e-4, all_sizes(128))
    return stream, train, thresholds


results = {}


def test_static_detector_on_drifting_stream(benchmark, workload):
    stream, train, thresholds = workload
    structure = train_structure(train, thresholds, params=FAST_SEARCH)

    def detect():
        d = ChunkedDetector(structure, thresholds)
        return d, d.detect(stream)

    detector, bursts = benchmark.pedantic(detect, rounds=1, iterations=1)
    results["static"] = (detector.counters.total_operations, bursts)
    print(f"\nstatic: {detector.counters.total_operations:,d} ops")


def test_adaptive_detector_on_drifting_stream(benchmark, workload):
    stream, train, thresholds = workload

    def detect():
        d = AdaptiveDetector(
            thresholds,
            train,
            AdaptiveConfig(
                min_era_points=20_000,
                retrain_window=10_000,
                search_params=FAST_SEARCH,
            ),
        )
        return d, d.detect(stream, chunk_size=8_192)

    detector, bursts = benchmark.pedantic(detect, rounds=1, iterations=1)
    print(f"\nadaptive: {detector.total_operations():,d} ops")
    print(detector.describe())
    static_ops, static_bursts = results["static"]
    # Identical semantics, lower cost after adapting to the new regime.
    assert bursts == static_bursts
    assert len(detector.eras) >= 2
    assert detector.total_operations() < static_ops
