"""Ablation: best-first vs greedy traversal of the structure space.

DESIGN.md §6: what does the best-first frontier buy over a greedy
descent?  Both strategies use the same transformation rule and cost
model; best-first explores alternatives, greedy commits.  The bench
reports found-structure cost (the quantity that matters) and search time
for both, on the paper's exponential rare-burst regime.
"""

import numpy as np
import pytest

from repro.core.chunked import ChunkedDetector
from repro.core.search import (
    BestFirstSearch,
    EmpiricalProbabilityModel,
    SearchParams,
    TheoreticalCostModel,
    greedy_search,
)
from repro.core.thresholds import NormalThresholds, all_sizes


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(88)
    train = rng.exponential(100.0, 10_000)
    data = rng.exponential(100.0, 60_000)
    thresholds = NormalThresholds.from_data(train, 1e-7, all_sizes(200))
    model = TheoreticalCostModel(
        thresholds, EmpiricalProbabilityModel(train)
    )
    return thresholds, model, data


def _measure(structure, thresholds, data):
    detector = ChunkedDetector(structure, thresholds)
    detector.detect(data)
    return detector.counters.total_operations


results = {}


def test_best_first_search(benchmark, setup):
    thresholds, model, data = setup

    def search():
        return BestFirstSearch(
            thresholds,
            model,
            SearchParams(
                max_same_size_states=200,
                max_final_states=4000,
                max_expansions=10_000,
            ),
        ).run()

    result = benchmark.pedantic(search, rounds=1, iterations=1)
    results["best_first"] = _measure(result.structure, thresholds, data)
    print(f"\nbest-first structure cost: {results['best_first']:,d} ops")


def test_greedy_search(benchmark, setup):
    thresholds, model, data = setup

    def search():
        return greedy_search(thresholds, model)

    structure, _cost = benchmark.pedantic(search, rounds=1, iterations=1)
    results["greedy"] = _measure(structure, thresholds, data)
    print(f"\ngreedy structure cost: {results['greedy']:,d} ops")
    # test_best_first_search runs first (file order); the frontier may
    # tie with greedy but must not lose meaningfully.
    assert results["best_first"] <= results["greedy"] * 1.1
