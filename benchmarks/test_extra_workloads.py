"""Bench: SAT vs SBT on the related-work workload models.

The paper's exponential synthetic class stands in for self-similar
traffic (Wang et al.'s b-model) and its burst definition complements
Kleinberg's automaton model; this bench runs the detector on both
*actual* models — b-model traffic and a two-state automaton stream — and
checks the SAT's advantage carries over from the i.i.d. surrogates to the
genuinely bursty processes.
"""

import numpy as np
import pytest

from repro.core.chunked import ChunkedDetector
from repro.core.sbt import shifted_binary_tree
from repro.core.search import train_structure
from repro.core.thresholds import EmpiricalThresholds, all_sizes
from repro.streams.bmodel import b_model_series
from repro.streams.kleinberg import kleinberg_stream

MAX_WINDOW = 128


def _measure(structure, thresholds, data):
    detector = ChunkedDetector(structure, thresholds)
    bursts = detector.detect(data)
    return detector.counters.total_operations, bursts


def test_bmodel_traffic(benchmark):
    # 2^17 = 131k points of strongly self-similar traffic.
    train = b_model_series(2e6, 16, bias=0.75, seed=10)
    data = b_model_series(4e6, 17, bias=0.75, seed=11)
    # Heavy-tailed data: empirical-quantile thresholds respect the tail.
    thresholds = EmpiricalThresholds(train, 1e-5, all_sizes(MAX_WINDOW))
    structure = train_structure(train, thresholds)

    def run():
        return _measure(structure, thresholds, data)

    sat_ops, bursts = benchmark.pedantic(run, rounds=1, iterations=1)
    sbt_ops, sbt_bursts = _measure(
        shifted_binary_tree(MAX_WINDOW), thresholds, data
    )
    print(
        f"\nb-model: SAT {sat_ops:,d} ops, SBT {sbt_ops:,d} ops "
        f"({sbt_ops / sat_ops:.2f}x), {len(bursts)} bursts"
    )
    assert bursts == sbt_bursts
    assert sat_ops < sbt_ops


def test_kleinberg_automaton_stream(benchmark):
    stream, intervals = kleinberg_stream(
        3.0,
        60.0,
        120_000,
        burst_start_probability=5e-5,
        burst_stop_probability=1e-2,
        seed=12,
    )
    train = np.random.default_rng(13).poisson(3.0, 12_000).astype(float)
    thresholds = EmpiricalThresholds(train, 1e-6, all_sizes(MAX_WINDOW))
    structure = train_structure(train, thresholds)

    def run():
        return _measure(structure, thresholds, stream)

    sat_ops, bursts = benchmark.pedantic(run, rounds=1, iterations=1)
    sbt_ops, sbt_bursts = _measure(
        shifted_binary_tree(MAX_WINDOW), thresholds, stream
    )
    print(
        f"\nautomaton: SAT {sat_ops:,d} ops, SBT {sbt_ops:,d} ops "
        f"({sbt_ops / sat_ops:.2f}x), {len(bursts)} bursts over "
        f"{len(intervals)} true episodes"
    )
    assert bursts == sbt_bursts
    assert sat_ops < sbt_ops
    # Recall: every true episode of meaningful length overlaps a burst.
    ends = np.array(sorted({b.end for b in bursts}), dtype=np.int64)
    for start, end in intervals:
        if end - start + 1 < 3:
            continue
        hit = np.searchsorted(ends, start - MAX_WINDOW)
        assert hit < ends.size and ends[hit] <= end + MAX_WINDOW, (start, end)
