"""Shared fixtures for the benchmark suite.

Each benchmark module regenerates one of the paper's tables or figures:
the timed callable is the experiment's full sweep (structure training +
detection for every configuration), and the resulting table — the same
rows/series the paper reports — is printed to stdout (visible with
``pytest benchmarks/ --benchmark-only -s`` or in the captured output).

Scale is controlled by the ``REPRO_SCALE`` environment variable
(``small`` default; ``medium``/``full`` for tighter statistics).
"""

import pytest

from repro.experiments.common import get_scale


def pytest_configure(config):
    # The reproduced tables printed by each bench ARE the deliverable:
    # include captured stdout of passing tests in the terminal summary.
    if "P" not in (config.option.reportchars or ""):
        config.option.reportchars = (config.option.reportchars or "") + "P"


@pytest.fixture(scope="session")
def scale():
    """The experiment scale preset for this benchmark session."""
    return get_scale()
