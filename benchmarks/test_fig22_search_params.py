"""Bench: Fig. 22 (Table 5) — search-parameter sensitivity."""

from repro.experiments.fig22_search_params import run

from _bench_utils import run_experiment


def test_fig22_search_params(benchmark, scale):
    table = run_experiment(benchmark, run, scale)
    cap_cols = [h for h in table.headers if h.startswith("ops(cap=")]
    for row in table.rows:
        by_header = dict(zip(table.headers, row))
        costs = [by_header[h] for h in cap_cols]
        # Paper: diminishing returns — the largest-cap structure is never
        # dramatically better than the smallest-cap one.
        assert min(costs) * 4 >= costs[0] * 0.9 or costs[-1] <= costs[0]
        # The found structures never lose to the SBT at the largest cap.
        assert costs[-1] <= by_header["ops(SBT)"] * 1.05, row
