"""Bench: Fig. 12 — Poisson lambda sweep (SAT vs SBT vs naive)."""

from repro.experiments.fig12_poisson_lambda import run

from _bench_utils import run_experiment


def test_fig12_poisson_lambda(benchmark, scale):
    table = run_experiment(benchmark, run, scale)
    sat = table.column("ops(SAT)")
    sbt = table.column("ops(SBT)")
    naive = table.column("ops(naive)")
    # Paper shape: SAT <= SBT (within noise) and both far below naive.
    assert all(s <= b * 1.05 for s, b in zip(sat, sbt))
    assert all(b < n for b, n in zip(sbt, naive))
    # Mid-lambda is where adaptation pays: at lambda = 0.1 the SAT must
    # clearly beat the fixed SBT.
    lambdas = table.column("lambda")
    i = lambdas.index(0.1)
    assert sat[i] * 3 < sbt[i]
