#!/usr/bin/env python
"""Persisted benchmark runner: detection speed and overload-layer cost.

Writes ``BENCH_<pr>.json`` (repo root by default) so speed and overhead
claims are recorded next to the code they describe instead of living in
PR text.  Three scenarios run over the same seeded multi-stream
workload:

* ``serial`` — the in-process :class:`MultiStreamDetector` backend:
  the points/s and ops/point reference.
* ``parallel_baseline`` — a 2-worker pool with the overload layer
  compiled out (``shedding="none"``, no ``OverloadConfig``): the PR 5
  dispatch path.
* ``parallel_overload_idle`` — the same pool with the overload planner
  engaged but never tripping (default thresholds are far above bench
  latencies): every round pays the planner, the latency EMA, and the
  telemetry bookkeeping, shedding nothing.

The headline number is the *idle overhead*: the relative wall-clock
cost of ``parallel_overload_idle`` over ``parallel_baseline``, which
the overload layer promises to keep small (<= 3%).  Runs alternate
between the two parallel scenarios and the medians are compared, so
slow-machine drift hits both sides equally.

Wall-clock timing lives here, outside ``src/repro`` — the library
itself stays clock-free (lint rule RL005).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py --pr 6
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from pathlib import Path

import numpy as np

from repro.core.aggregates import MAX, SUM
from repro.core.chunked import ChunkedDetector
from repro.core.kernel import numba_available
from repro.core.sbt import shifted_binary_tree
from repro.core.structure import single_level_structure
from repro.core.thresholds import (
    FixedThresholds,
    NormalThresholds,
    all_sizes,
)
from repro.runtime import OverloadConfig, ParallelMultiStreamDetector


def make_workload(
    n_streams: int, points: int, max_window: int, seed: int
):
    rng = np.random.default_rng(seed)
    train = rng.poisson(7.0, 20_000).astype(float)
    thresholds = NormalThresholds.from_data(
        train, 1e-5, all_sizes(max_window)
    )
    structure = shifted_binary_tree(max_window)
    streams = {
        f"s{i:02d}": rng.poisson(7.0, points).astype(float)
        for i in range(n_streams)
    }
    return streams, structure, thresholds


def run_once(streams, structure, thresholds, chunk, **fleet_kwargs):
    """One timed pass: build the fleet, then time the data path only.

    Construction (worker spawn, shm setup) is excluded — the overhead
    under measurement is per-round, on the ingest path.
    """
    fleet = ParallelMultiStreamDetector.shared(
        streams, structure, thresholds, **fleet_kwargs
    )
    points = sum(int(s.size) for s in streams.values())
    longest = max(int(s.size) for s in streams.values())
    t0 = time.perf_counter()
    for lo in range(0, longest, chunk):
        batch = {
            name: data[lo : lo + chunk]
            for name, data in streams.items()
            if lo < data.size
        }
        fleet.process(batch)
    fleet.finish()
    elapsed = time.perf_counter() - t0
    ops = fleet.total_operations()
    fleet.close()
    return {
        "seconds": elapsed,
        "points_per_s": points / elapsed,
        "ops_per_point": ops / points,
    }


def median_runs(samples):
    return {
        "seconds": statistics.median(s["seconds"] for s in samples),
        # Scheduling noise only ever *adds* time, so the minimum is the
        # low-variance estimator for relative comparisons.
        "seconds_min": min(s["seconds"] for s in samples),
        "points_per_s": statistics.median(
            s["points_per_s"] for s in samples
        ),
        "ops_per_point": samples[0]["ops_per_point"],  # deterministic
        "repeats": len(samples),
    }


# ---------------------------------------------------------------------------
# Kernel trajectory: fused-scan throughput, kernel vs NumPy fallback
# ---------------------------------------------------------------------------

def kernel_run_once(data, structure, thresholds, aggregate, backend, chunk):
    """Time one single-stream chunked pass under one kernel backend."""
    det = ChunkedDetector(structure, thresholds, aggregate, backend=backend)
    t0 = time.perf_counter()
    for lo in range(0, data.size, chunk):
        det.process(data[lo : lo + chunk])
    det.finish()
    elapsed = time.perf_counter() - t0
    return elapsed, det.counters


def kernel_trajectory(args):
    """points/s + op-count trajectory of the fused scan kernel.

    Four workloads (dense and sparse SAT structures x sum and max
    aggregates) run under every available backend.  Backends must agree
    on the exact RAM-model op counts — that equality is asserted and
    recorded, because the kernel's contract is "same operations, less
    interpreter" — so the points/s column is the only thing allowed to
    move.  The headline is the dense/sum speedup of the compiled kernel
    over the NumPy fallback (target: >= 5x); on machines without numba
    the numpy column is still recorded so the trajectory stays
    comparable across PRs.
    """
    rng = np.random.default_rng(args.seed + 1)
    train = rng.poisson(7.0, 20_000).astype(float)
    data = rng.poisson(7.0, args.kernel_points).astype(float)
    sizes = all_sizes(args.max_window)
    sum_thresholds = NormalThresholds.from_data(train, 1e-5, sizes)
    # For max, a flat high-quantile cut gives a small but non-zero alarm
    # rate on every window size (a window's max clears it when any of
    # its points does).
    max_cut = float(np.quantile(train, 1.0 - 1e-4))
    max_thresholds = FixedThresholds({int(w): max_cut for w in sizes})
    structures = {
        "dense": single_level_structure(args.max_window),
        "sparse": shifted_binary_tree(args.max_window),
    }
    aggregates = {"sum": (SUM, sum_thresholds), "max": (MAX, max_thresholds)}
    backends = ["numpy"] + (["numba"] if numba_available() else [])

    cases = {}
    for sname, structure in structures.items():
        for aname, (aggregate, thresholds) in aggregates.items():
            per_backend = {}
            ref_ops = None
            for backend in backends:
                runs = [
                    kernel_run_once(
                        data, structure, thresholds, aggregate,
                        backend, args.chunk,
                    )
                    for _ in range(args.kernel_repeats)
                ]
                seconds = min(r[0] for r in runs)
                counters = runs[0][1]
                ops = counters.total_operations
                if ref_ops is None:
                    ref_ops = ops
                # The kernel contract: identical RAM-model work.
                assert ops == ref_ops, (
                    f"{sname}/{aname}: backend {backend} changed the "
                    f"op count ({ops} != {ref_ops})"
                )
                per_backend[backend] = {
                    "seconds_min": seconds,
                    "points_per_s": data.size / seconds,
                    "ops_per_point": ops / data.size,
                    "repeats": args.kernel_repeats,
                }
            entry = {
                "backends": per_backend,
                "op_counts_identical": True,
                "total_operations": ref_ops,
            }
            if "numba" in per_backend:
                entry["speedup_numba_over_numpy"] = (
                    per_backend["numba"]["points_per_s"]
                    / per_backend["numpy"]["points_per_s"]
                )
            cases[f"{sname}/{aname}"] = entry

    headline = cases["dense/sum"].get("speedup_numba_over_numpy")
    return {
        "numba_available": numba_available(),
        "points": int(data.size),
        "chunk": args.chunk,
        "max_window": args.max_window,
        "cases": cases,
        "headline": {
            "case": "dense/sum",
            "speedup_numba_over_numpy": headline,
            "target": 5.0,
            "meets_target": (
                None if headline is None else headline >= 5.0
            ),
            "note": (
                None
                if headline is not None
                else "numba not installed; numpy trajectory recorded only"
            ),
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pr", type=int, default=7)
    parser.add_argument("--streams", type=int, default=8)
    parser.add_argument("--points", type=int, default=60_000)
    parser.add_argument("--chunk", type=int, default=4_096)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-window", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=12345)
    parser.add_argument(
        "--kernel-points",
        type=int,
        default=200_000,
        help="stream length of the single-stream kernel trajectory",
    )
    parser.add_argument(
        "--kernel-repeats",
        type=int,
        default=3,
        help="timed repeats per kernel trajectory cell (min is kept)",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=None,
        help="output path (default: <repo root>/BENCH_<pr>.json)",
    )
    args = parser.parse_args(argv)

    streams, structure, thresholds = make_workload(
        args.streams, args.points, args.max_window, args.seed
    )
    chunk = args.chunk

    serial = [
        run_once(streams, structure, thresholds, chunk, workers="serial")
        for _ in range(args.repeats)
    ]
    # Interleave the two parallel scenarios so machine drift (thermal,
    # co-tenants) biases neither side of the overhead comparison.
    baseline, idle = [], []
    for _ in range(args.repeats):
        baseline.append(
            run_once(
                streams, structure, thresholds, chunk,
                workers=args.workers,
            )
        )
        idle.append(
            run_once(
                streams, structure, thresholds, chunk,
                workers=args.workers,
                shedding="none",
                overload=OverloadConfig(),
            )
        )

    scenarios = {
        "serial": median_runs(serial),
        "parallel_baseline": median_runs(baseline),
        "parallel_overload_idle": median_runs(idle),
    }
    base_s = scenarios["parallel_baseline"]["seconds_min"]
    idle_s = scenarios["parallel_overload_idle"]["seconds_min"]
    overhead = (idle_s - base_s) / base_s
    payload = {
        "pr": args.pr,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "config": {
            "streams": args.streams,
            "points_per_stream": args.points,
            "chunk": chunk,
            "workers": args.workers,
            "max_window": args.max_window,
            "repeats": args.repeats,
            "seed": args.seed,
        },
        "scenarios": scenarios,
        "kernel_trajectory": kernel_trajectory(args),
        "overload_idle_overhead": {
            "relative": overhead,
            "absolute_s": idle_s - base_s,
            "budget": 0.03,
            "within_budget": overhead <= 0.03,
        },
    }
    out = args.output
    if out is None:
        out = Path(__file__).resolve().parent.parent / f"BENCH_{args.pr}.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
