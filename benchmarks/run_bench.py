#!/usr/bin/env python
"""Persisted benchmark runner: detection speed and overload-layer cost.

Writes ``BENCH_<pr>.json`` (repo root by default) so speed and overhead
claims are recorded next to the code they describe instead of living in
PR text.  Three scenarios run over the same seeded multi-stream
workload:

* ``serial`` — the in-process :class:`MultiStreamDetector` backend:
  the points/s and ops/point reference.
* ``parallel_baseline`` — a 2-worker pool with the overload layer
  compiled out (``shedding="none"``, no ``OverloadConfig``): the PR 5
  dispatch path.
* ``parallel_overload_idle`` — the same pool with the overload planner
  engaged but never tripping (default thresholds are far above bench
  latencies): every round pays the planner, the latency EMA, and the
  telemetry bookkeeping, shedding nothing.

The headline number is the *idle overhead*: the relative wall-clock
cost of ``parallel_overload_idle`` over ``parallel_baseline``, which
the overload layer promises to keep small (<= 3%).  Runs alternate
between the two parallel scenarios and the medians are compared, so
slow-machine drift hits both sides equally.

A fourth section benchmarks the durability layer (PR 10): the same
timestamped stream is fed in batches through the plain watermark
ingestor (WAL off) and through ``DurableStreamIngestor`` (WAL on —
journal every batch, checksum, seal segments with fsync, snapshot on
cadence), runs interleaved; the *durable overhead* is the relative
wall-clock cost of journaling on the batched ingest path, budgeted at
<= 25%.  Recovery time is measured on a run abandoned mid-stream:
``recover()`` loads the newest snapshot and replays the WAL tail, and
the report records seconds per replayed entry/record.

Wall-clock timing lives here, outside ``src/repro`` — the library
itself stays clock-free (lint rule RL005).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py --pr 6
"""

from __future__ import annotations

import argparse
import json
import shutil
import statistics
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.aggregates import MAX, SUM
from repro.core.chunked import ChunkedDetector
from repro.core.kernel import numba_available
from repro.core.sbt import shifted_binary_tree
from repro.core.structure import single_level_structure
from repro.core.thresholds import (
    FixedThresholds,
    NormalThresholds,
    all_sizes,
)
from repro.durable import DurableStreamIngestor
from repro.ingest import StreamIngestor
from repro.io.spec import DetectorSpec
from repro.runtime import OverloadConfig, ParallelMultiStreamDetector


def make_workload(
    n_streams: int, points: int, max_window: int, seed: int
):
    rng = np.random.default_rng(seed)
    train = rng.poisson(7.0, 20_000).astype(float)
    thresholds = NormalThresholds.from_data(
        train, 1e-5, all_sizes(max_window)
    )
    structure = shifted_binary_tree(max_window)
    streams = {
        f"s{i:02d}": rng.poisson(7.0, points).astype(float)
        for i in range(n_streams)
    }
    return streams, structure, thresholds


def run_once(streams, structure, thresholds, chunk, **fleet_kwargs):
    """One timed pass: build the fleet, then time the data path only.

    Construction (worker spawn, shm setup) is excluded — the overhead
    under measurement is per-round, on the ingest path.
    """
    fleet = ParallelMultiStreamDetector.shared(
        streams, structure, thresholds, **fleet_kwargs
    )
    points = sum(int(s.size) for s in streams.values())
    longest = max(int(s.size) for s in streams.values())
    t0 = time.perf_counter()
    for lo in range(0, longest, chunk):
        batch = {
            name: data[lo : lo + chunk]
            for name, data in streams.items()
            if lo < data.size
        }
        fleet.process(batch)
    fleet.finish()
    elapsed = time.perf_counter() - t0
    ops = fleet.total_operations()
    fleet.close()
    return {
        "seconds": elapsed,
        "points_per_s": points / elapsed,
        "ops_per_point": ops / points,
    }


def median_runs(samples):
    return {
        "seconds": statistics.median(s["seconds"] for s in samples),
        # Scheduling noise only ever *adds* time, so the minimum is the
        # low-variance estimator for relative comparisons.
        "seconds_min": min(s["seconds"] for s in samples),
        "points_per_s": statistics.median(
            s["points_per_s"] for s in samples
        ),
        "ops_per_point": samples[0]["ops_per_point"],  # deterministic
        "repeats": len(samples),
    }


# ---------------------------------------------------------------------------
# Kernel trajectory: fused-scan throughput, kernel vs NumPy fallback
# ---------------------------------------------------------------------------

def kernel_run_once(data, structure, thresholds, aggregate, backend, chunk):
    """Time one single-stream chunked pass under one kernel backend."""
    det = ChunkedDetector(structure, thresholds, aggregate, backend=backend)
    t0 = time.perf_counter()
    for lo in range(0, data.size, chunk):
        det.process(data[lo : lo + chunk])
    det.finish()
    elapsed = time.perf_counter() - t0
    return elapsed, det.counters


def kernel_trajectory(args):
    """points/s + op-count trajectory of the fused scan kernel.

    Four workloads (dense and sparse SAT structures x sum and max
    aggregates) run under every available backend.  Backends must agree
    on the exact RAM-model op counts — that equality is asserted and
    recorded, because the kernel's contract is "same operations, less
    interpreter" — so the points/s column is the only thing allowed to
    move.  The headline is the dense/sum speedup of the compiled kernel
    over the NumPy fallback (target: >= 5x); on machines without numba
    the numpy column is still recorded so the trajectory stays
    comparable across PRs.
    """
    rng = np.random.default_rng(args.seed + 1)
    train = rng.poisson(7.0, 20_000).astype(float)
    data = rng.poisson(7.0, args.kernel_points).astype(float)
    sizes = all_sizes(args.max_window)
    sum_thresholds = NormalThresholds.from_data(train, 1e-5, sizes)
    # For max, a flat high-quantile cut gives a small but non-zero alarm
    # rate on every window size (a window's max clears it when any of
    # its points does).
    max_cut = float(np.quantile(train, 1.0 - 1e-4))
    max_thresholds = FixedThresholds({int(w): max_cut for w in sizes})
    structures = {
        "dense": single_level_structure(args.max_window),
        "sparse": shifted_binary_tree(args.max_window),
    }
    aggregates = {"sum": (SUM, sum_thresholds), "max": (MAX, max_thresholds)}
    backends = ["numpy"] + (["numba"] if numba_available() else [])

    cases = {}
    for sname, structure in structures.items():
        for aname, (aggregate, thresholds) in aggregates.items():
            per_backend = {}
            ref_ops = None
            for backend in backends:
                runs = [
                    kernel_run_once(
                        data, structure, thresholds, aggregate,
                        backend, args.chunk,
                    )
                    for _ in range(args.kernel_repeats)
                ]
                seconds = min(r[0] for r in runs)
                counters = runs[0][1]
                ops = counters.total_operations
                if ref_ops is None:
                    ref_ops = ops
                # The kernel contract: identical RAM-model work.
                assert ops == ref_ops, (
                    f"{sname}/{aname}: backend {backend} changed the "
                    f"op count ({ops} != {ref_ops})"
                )
                per_backend[backend] = {
                    "seconds_min": seconds,
                    "points_per_s": data.size / seconds,
                    "ops_per_point": ops / data.size,
                    "repeats": args.kernel_repeats,
                }
            entry = {
                "backends": per_backend,
                "op_counts_identical": True,
                "total_operations": ref_ops,
            }
            if "numba" in per_backend:
                entry["speedup_numba_over_numpy"] = (
                    per_backend["numba"]["points_per_s"]
                    / per_backend["numpy"]["points_per_s"]
                )
            cases[f"{sname}/{aname}"] = entry

    headline = cases["dense/sum"].get("speedup_numba_over_numpy")
    return {
        "numba_available": numba_available(),
        "points": int(data.size),
        "chunk": args.chunk,
        "max_window": args.max_window,
        "cases": cases,
        "headline": {
            "case": "dense/sum",
            "speedup_numba_over_numpy": headline,
            "target": 5.0,
            "meets_target": (
                None if headline is None else headline >= 5.0
            ),
            "note": (
                None
                if headline is not None
                else "numba not installed; numpy trajectory recorded only"
            ),
        },
    }


# ---------------------------------------------------------------------------
# Durable trajectory: WAL-on vs WAL-off ingestion, recovery time
# ---------------------------------------------------------------------------

def durable_trajectory(args):
    """Journaling overhead and recovery time of the durability layer.

    WAL-off is the plain watermark ingestor over the chunked detector;
    WAL-on is ``DurableStreamIngestor`` with the same spec — every
    batch is CRC-framed into the write-ahead log before it is applied,
    segments seal with fsync + atomic rename, and a full snapshot is
    published every ``--snapshot-every`` logged operations.  Runs
    interleave so machine drift hits both sides equally, and the
    minimum over repeats is compared (scheduling noise only adds
    time).  The promise under test: journaling costs <= 25% wall
    clock on the batched ingest path.

    Recovery is timed against a run abandoned mid-stream (no
    ``finish()``, so the final snapshot was never taken): ``recover``
    must load the newest snapshot and replay the WAL tail above it.
    """
    rng = np.random.default_rng(args.seed + 2)
    train = rng.poisson(7.0, 20_000).astype(float)
    thresholds = NormalThresholds.from_data(
        train, 1e-5, all_sizes(args.max_window)
    )
    structure = shifted_binary_tree(args.max_window)
    spec = DetectorSpec(structure, thresholds)
    n = args.durable_points
    values = rng.poisson(7.0, n).astype(float)
    timestamps = np.arange(n, dtype=np.int64)
    batch = args.durable_batch

    def feed(ing):
        for lo in range(0, n, batch):
            ing.push_batch(
                timestamps[lo : lo + batch], values[lo : lo + batch]
            )

    def run_plain():
        det = ChunkedDetector(structure, thresholds)
        ing = StreamIngestor(det, thresholds, SUM)
        t0 = time.perf_counter()
        feed(ing)
        ing.finish()
        return time.perf_counter() - t0

    def run_durable(finish=True):
        d = Path(tempfile.mkdtemp(prefix="bench-durable-"))
        dur = DurableStreamIngestor(
            spec, d, snapshot_every=args.snapshot_every
        )
        t0 = time.perf_counter()
        feed(dur)
        if finish:
            dur.finish()
        return time.perf_counter() - t0, d, dur

    plain_s, wal_s = [], []
    for _ in range(args.durable_repeats):
        plain_s.append(run_plain())
        elapsed, d, _ = run_durable()
        wal_s.append(elapsed)
        shutil.rmtree(d)

    # Abandon a run mid-stream and time the recovery path itself.
    _, d, dur = run_durable(finish=False)
    dur._wal.close()  # noqa: SLF001 - simulate the process dying here
    t0 = time.perf_counter()
    _, report = DurableStreamIngestor.recover(d, recovery="strict")
    recover_s = time.perf_counter() - t0
    shutil.rmtree(d)

    wal_min, plain_min = min(wal_s), min(plain_s)
    overhead = (wal_min - plain_min) / plain_min
    entries = (n + batch - 1) // batch + 1  # batches + finish
    return {
        "points": n,
        "batch": batch,
        "snapshot_every": args.snapshot_every,
        "repeats": args.durable_repeats,
        "wal_off": {
            "seconds_min": plain_min,
            "seconds_median": statistics.median(plain_s),
            "points_per_s": n / plain_min,
        },
        "wal_on": {
            "seconds_min": wal_min,
            "seconds_median": statistics.median(wal_s),
            "points_per_s": n / wal_min,
            "wal_entries": entries,
        },
        "overhead": {
            "relative": overhead,
            "absolute_s": wal_min - plain_min,
            "budget": 0.25,
            "within_budget": overhead <= 0.25,
        },
        "recovery": {
            "seconds": recover_s,
            "snapshot_lsn": report.snapshot_lsn,
            "replayed_entries": report.replayed_entries,
            "replayed_records": report.replayed_records,
            "seconds_per_replayed_record": (
                recover_s / report.replayed_records
                if report.replayed_records
                else None
            ),
            "finished": report.finished,
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pr", type=int, default=10)
    parser.add_argument("--streams", type=int, default=8)
    parser.add_argument("--points", type=int, default=60_000)
    parser.add_argument("--chunk", type=int, default=4_096)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-window", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=12345)
    parser.add_argument(
        "--kernel-points",
        type=int,
        default=200_000,
        help="stream length of the single-stream kernel trajectory",
    )
    parser.add_argument(
        "--kernel-repeats",
        type=int,
        default=3,
        help="timed repeats per kernel trajectory cell (min is kept)",
    )
    parser.add_argument(
        "--durable-points",
        type=int,
        default=200_000,
        help="stream length of the durable (WAL) trajectory",
    )
    parser.add_argument(
        "--durable-batch",
        type=int,
        default=2_048,
        help="push_batch size of the durable trajectory",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=64,
        help="snapshot cadence (logged operations) of the durable run",
    )
    parser.add_argument(
        "--durable-repeats",
        type=int,
        default=5,
        help="timed repeats per durable scenario (min is kept)",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=None,
        help="output path (default: <repo root>/BENCH_<pr>.json)",
    )
    args = parser.parse_args(argv)

    streams, structure, thresholds = make_workload(
        args.streams, args.points, args.max_window, args.seed
    )
    chunk = args.chunk

    serial = [
        run_once(streams, structure, thresholds, chunk, workers="serial")
        for _ in range(args.repeats)
    ]
    # Interleave the two parallel scenarios so machine drift (thermal,
    # co-tenants) biases neither side of the overhead comparison.
    baseline, idle = [], []
    for _ in range(args.repeats):
        baseline.append(
            run_once(
                streams, structure, thresholds, chunk,
                workers=args.workers,
            )
        )
        idle.append(
            run_once(
                streams, structure, thresholds, chunk,
                workers=args.workers,
                shedding="none",
                overload=OverloadConfig(),
            )
        )

    scenarios = {
        "serial": median_runs(serial),
        "parallel_baseline": median_runs(baseline),
        "parallel_overload_idle": median_runs(idle),
    }
    base_s = scenarios["parallel_baseline"]["seconds_min"]
    idle_s = scenarios["parallel_overload_idle"]["seconds_min"]
    overhead = (idle_s - base_s) / base_s
    payload = {
        "pr": args.pr,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "config": {
            "streams": args.streams,
            "points_per_stream": args.points,
            "chunk": chunk,
            "workers": args.workers,
            "max_window": args.max_window,
            "repeats": args.repeats,
            "seed": args.seed,
        },
        "scenarios": scenarios,
        "kernel_trajectory": kernel_trajectory(args),
        "durable_trajectory": durable_trajectory(args),
        "overload_idle_overhead": {
            "relative": overhead,
            "absolute_s": idle_s - base_s,
            "budget": 0.03,
            "within_budget": overhead <= 0.03,
        },
    }
    out = args.output
    if out is None:
        out = Path(__file__).resolve().parent.parent / f"BENCH_{args.pr}.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
