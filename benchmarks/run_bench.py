#!/usr/bin/env python
"""Persisted benchmark runner: detection speed and overload-layer cost.

Writes ``BENCH_<pr>.json`` (repo root by default) so speed and overhead
claims are recorded next to the code they describe instead of living in
PR text.  Three scenarios run over the same seeded multi-stream
workload:

* ``serial`` — the in-process :class:`MultiStreamDetector` backend:
  the points/s and ops/point reference.
* ``parallel_baseline`` — a 2-worker pool with the overload layer
  compiled out (``shedding="none"``, no ``OverloadConfig``): the PR 5
  dispatch path.
* ``parallel_overload_idle`` — the same pool with the overload planner
  engaged but never tripping (default thresholds are far above bench
  latencies): every round pays the planner, the latency EMA, and the
  telemetry bookkeeping, shedding nothing.

The headline number is the *idle overhead*: the relative wall-clock
cost of ``parallel_overload_idle`` over ``parallel_baseline``, which
the overload layer promises to keep small (<= 3%).  Runs alternate
between the two parallel scenarios and the medians are compared, so
slow-machine drift hits both sides equally.

Wall-clock timing lives here, outside ``src/repro`` — the library
itself stays clock-free (lint rule RL005).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py --pr 6
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from pathlib import Path

import numpy as np

from repro.core.sbt import shifted_binary_tree
from repro.core.thresholds import NormalThresholds, all_sizes
from repro.runtime import OverloadConfig, ParallelMultiStreamDetector


def make_workload(
    n_streams: int, points: int, max_window: int, seed: int
):
    rng = np.random.default_rng(seed)
    train = rng.poisson(7.0, 20_000).astype(float)
    thresholds = NormalThresholds.from_data(
        train, 1e-5, all_sizes(max_window)
    )
    structure = shifted_binary_tree(max_window)
    streams = {
        f"s{i:02d}": rng.poisson(7.0, points).astype(float)
        for i in range(n_streams)
    }
    return streams, structure, thresholds


def run_once(streams, structure, thresholds, chunk, **fleet_kwargs):
    """One timed pass: build the fleet, then time the data path only.

    Construction (worker spawn, shm setup) is excluded — the overhead
    under measurement is per-round, on the ingest path.
    """
    fleet = ParallelMultiStreamDetector.shared(
        streams, structure, thresholds, **fleet_kwargs
    )
    points = sum(int(s.size) for s in streams.values())
    longest = max(int(s.size) for s in streams.values())
    t0 = time.perf_counter()
    for lo in range(0, longest, chunk):
        batch = {
            name: data[lo : lo + chunk]
            for name, data in streams.items()
            if lo < data.size
        }
        fleet.process(batch)
    fleet.finish()
    elapsed = time.perf_counter() - t0
    ops = fleet.total_operations()
    fleet.close()
    return {
        "seconds": elapsed,
        "points_per_s": points / elapsed,
        "ops_per_point": ops / points,
    }


def median_runs(samples):
    return {
        "seconds": statistics.median(s["seconds"] for s in samples),
        # Scheduling noise only ever *adds* time, so the minimum is the
        # low-variance estimator for relative comparisons.
        "seconds_min": min(s["seconds"] for s in samples),
        "points_per_s": statistics.median(
            s["points_per_s"] for s in samples
        ),
        "ops_per_point": samples[0]["ops_per_point"],  # deterministic
        "repeats": len(samples),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pr", type=int, default=6)
    parser.add_argument("--streams", type=int, default=8)
    parser.add_argument("--points", type=int, default=60_000)
    parser.add_argument("--chunk", type=int, default=4_096)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-window", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=12345)
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=None,
        help="output path (default: <repo root>/BENCH_<pr>.json)",
    )
    args = parser.parse_args(argv)

    streams, structure, thresholds = make_workload(
        args.streams, args.points, args.max_window, args.seed
    )
    chunk = args.chunk

    serial = [
        run_once(streams, structure, thresholds, chunk, workers="serial")
        for _ in range(args.repeats)
    ]
    # Interleave the two parallel scenarios so machine drift (thermal,
    # co-tenants) biases neither side of the overhead comparison.
    baseline, idle = [], []
    for _ in range(args.repeats):
        baseline.append(
            run_once(
                streams, structure, thresholds, chunk,
                workers=args.workers,
            )
        )
        idle.append(
            run_once(
                streams, structure, thresholds, chunk,
                workers=args.workers,
                shedding="none",
                overload=OverloadConfig(),
            )
        )

    scenarios = {
        "serial": median_runs(serial),
        "parallel_baseline": median_runs(baseline),
        "parallel_overload_idle": median_runs(idle),
    }
    base_s = scenarios["parallel_baseline"]["seconds_min"]
    idle_s = scenarios["parallel_overload_idle"]["seconds_min"]
    overhead = (idle_s - base_s) / base_s
    payload = {
        "pr": args.pr,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "config": {
            "streams": args.streams,
            "points_per_stream": args.points,
            "chunk": chunk,
            "workers": args.workers,
            "max_window": args.max_window,
            "repeats": args.repeats,
            "seed": args.seed,
        },
        "scenarios": scenarios,
        "overload_idle_overhead": {
            "relative": overhead,
            "absolute_s": idle_s - base_s,
            "budget": 0.03,
            "within_budget": overhead <= 0.03,
        },
    }
    out = args.output
    if out is None:
        out = Path(__file__).resolve().parent.parent / f"BENCH_{args.pr}.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
