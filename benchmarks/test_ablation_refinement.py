"""Ablation: the detection-time filter refinement of paper §3.2.

On alarm, the detector binary-searches for the largest triggered size and
prunes the detailed search region to sizes at or below it; without the
refinement it searches the level's whole size range.  The refinement must
never change the bursts; it trades a few comparisons per alarm for fewer
searched cells, which pays off whenever alarms trigger only a prefix of a
level's sizes (moderately rare bursts) and is a wash when alarms trigger
everything anyway.
"""

import numpy as np
import pytest

from repro.core.chunked import ChunkedDetector
from repro.core.search import train_structure
from repro.core.thresholds import NormalThresholds, all_sizes


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(99)
    train = rng.poisson(10.0, 10_000).astype(float)
    data = rng.poisson(10.0, 40_000).astype(float)
    # Moderate rarity: alarms happen, but usually only small sizes
    # trigger — the refinement's sweet spot.
    thresholds = NormalThresholds.from_data(train, 1e-4, all_sizes(128))
    structure = train_structure(train, thresholds)
    return structure, thresholds, data


results = {}


def test_with_refinement(benchmark, workload):
    structure, thresholds, data = workload

    def detect():
        d = ChunkedDetector(structure, thresholds, refine_filter=True)
        bursts = d.detect(data)
        return d, bursts

    detector, bursts = benchmark.pedantic(detect, rounds=1, iterations=1)
    results["refined"] = (detector.counters, bursts)
    print(
        f"\nrefined: {detector.counters.total_search_cells:,d} cells, "
        f"{detector.counters.total_filter_comparisons:,d} comparisons"
    )


def test_without_refinement(benchmark, workload):
    structure, thresholds, data = workload

    def detect():
        d = ChunkedDetector(structure, thresholds, refine_filter=False)
        bursts = d.detect(data)
        return d, bursts

    detector, bursts = benchmark.pedantic(detect, rounds=1, iterations=1)
    results["unrefined"] = (detector.counters, bursts)
    print(
        f"\nunrefined: {detector.counters.total_search_cells:,d} cells, "
        f"{detector.counters.total_filter_comparisons:,d} comparisons"
    )
    # test_with_refinement runs first (file order); check the invariants.
    refined_counters, refined_bursts = results["refined"]
    # Same bursts, guaranteed; refinement strictly prunes searched cells
    # in this regime.
    assert refined_bursts == bursts
    assert (
        refined_counters.total_search_cells
        < detector.counters.total_search_cells
    )
