"""Aggregate multi-stream throughput: worker pool vs single worker.

Not a paper figure — the scaling baseline of the parallel runtime.  A
16-stream portfolio (the paper's §5.4 shape, shrunk) is detected with
pools of 1, 2 and 4 workers; aggregate points/s per pool size is printed
and recorded in ``BENCH_parallel_throughput.json`` next to this file.
Cross-stream detection shares no state, so a 4-worker pool on a >=4-core
box must deliver at least 1.5x the 1-worker aggregate — well under the
ideal 4x to absorb chunk fan-out and result-merge overhead, but enough
to prove the pool actually parallelizes.

The 1-worker pool (not the serial backend) is the baseline so the
comparison isolates scaling from IPC overhead: both sides pay the
shared-memory copy and the pipe round-trip; only the core count differs.

Wall-clock speedup asserts are inherently flaky on loaded or shared
runners (the cpu_count gate cannot see contention), so the >=1.5x check
is a hard failure only on dedicated benchmark machines that set
``REPRO_BENCH_STRICT=1``; elsewhere a shortfall is reported as a
warning while the measured rates are still recorded.  This suite is
also outside tier-1 (``testpaths`` covers ``tests/`` only).
"""

import json
import os
import time
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.core.search import train_structure
from repro.core.thresholds import NormalThresholds, all_sizes
from repro.runtime import ParallelMultiStreamDetector

MAX_WINDOW = 128
N_STREAMS = 16
POINTS_PER_STREAM = 100_000
WORKER_COUNTS = (1, 2, 4)
RESULT_FILE = Path(__file__).parent / "BENCH_parallel_throughput.json"


@pytest.fixture(scope="module")
def portfolio():
    rng = np.random.default_rng(77)
    train = rng.exponential(100.0, 10_000)
    thresholds = NormalThresholds.from_data(
        train, 1e-7, all_sizes(MAX_WINDOW)
    )
    structure = train_structure(train, thresholds)
    data = {
        f"s{i:02d}": rng.exponential(100.0, POINTS_PER_STREAM)
        for i in range(N_STREAMS)
    }
    return structure, thresholds, data


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="needs >= 4 cores to measure scaling"
)
def test_parallel_throughput(portfolio):
    structure, thresholds, data = portfolio
    total_points = sum(v.size for v in data.values())
    # Untimed warm-up: fork, shared-memory setup, NumPy first-touch and
    # CPU frequency scaling all penalize whichever configuration runs
    # first; pay them once before anything is measured.
    warm = {name: values[:10_000] for name, values in data.items()}
    ParallelMultiStreamDetector.shared(
        warm, structure, thresholds, workers=2
    ).detect(warm)
    rates = {}
    for workers in WORKER_COUNTS:
        best = 0.0
        for _ in range(3):
            fleet = ParallelMultiStreamDetector.shared(
                data, structure, thresholds, workers=workers
            )
            start = time.perf_counter()
            results = fleet.detect(data)
            elapsed = time.perf_counter() - start
            best = max(best, total_points / elapsed)
        rates[workers] = best
        bursts = sum(len(b) for b in results.values())
        print(
            f"\nworkers={workers}: {total_points:,d} points, "
            f"{bursts} bursts, {rates[workers]:,.0f} points/s (best of 3)"
        )
    speedup = rates[4] / rates[1]
    RESULT_FILE.write_text(
        json.dumps(
            {
                "streams": N_STREAMS,
                "points_per_stream": POINTS_PER_STREAM,
                "cpu_count": os.cpu_count(),
                "points_per_second": {
                    str(w): round(r) for w, r in rates.items()
                },
                "speedup_4_vs_1": round(speedup, 3),
            },
            indent=2,
        )
        + "\n"
    )
    print(f"4-worker speedup over 1 worker: {speedup:.2f}x -> {RESULT_FILE}")
    shortfall = (
        f"4 workers only {speedup:.2f}x over 1 worker; "
        "the pool is not parallelizing"
    )
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert speedup >= 1.5, shortfall
    elif speedup < 1.5:
        warnings.warn(
            shortfall + " (set REPRO_BENCH_STRICT=1 on a dedicated "
            "runner to make this a failure)",
            stacklevel=1,
        )
