"""Ablation: how well the theoretical cost model predicts measured cost.

DESIGN.md §6.3 / paper Fig. 10's foundation: the search is only as good
as its cost model.  This bench sweeps structures of very different
densities and compares model-predicted operations per point against a
measured detection run, reporting the worst relative error.
"""

import numpy as np
import pytest

from repro.core.chunked import ChunkedDetector
from repro.core.sbt import shifted_binary_tree
from repro.core.search import EmpiricalProbabilityModel, TheoreticalCostModel
from repro.core.structure import SATStructure, single_level_structure
from repro.core.thresholds import NormalThresholds, all_sizes


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(111)
    train = rng.exponential(50.0, 10_000)
    data = rng.exponential(50.0, 80_000)
    thresholds = NormalThresholds.from_data(train, 1e-5, all_sizes(100))
    model = TheoreticalCostModel(
        thresholds, EmpiricalProbabilityModel(train)
    )
    return thresholds, model, data


def test_cost_model_accuracy(benchmark, setup):
    thresholds, model, data = setup
    structures = [
        shifted_binary_tree(100),
        single_level_structure(100),
        SATStructure.from_pairs([(8, 2), (24, 4), (48, 8), (124, 16)]),
        SATStructure.from_pairs([(4, 1), (104, 2)]),
    ]

    def run_all():
        errors = []
        for structure in structures:
            predicted = model.cost_per_point(structure)
            detector = ChunkedDetector(structure, thresholds)
            detector.detect(data)
            actual = detector.counters.total_operations / data.size
            errors.append(abs(predicted - actual) / actual)
        return errors

    errors = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\nper-structure relative errors:", [f"{e:.3f}" for e in errors])
    # The model should track measured cost within ~30% even across a 30x
    # density spread (the paper's Fig. 10 shows similar fidelity).
    assert max(errors) < 0.3
