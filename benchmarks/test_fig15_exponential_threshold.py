"""Bench: Fig. 15 — burst-probability sweep on exponential data.

The paper's headline: the adapted SAT beats the SBT by up to ~35x in this
regime.  The bench asserts the shape (monotone-ish growth of the speedup
as p shrinks, double digits at the rare end) rather than the paper's
exact peak, which depends on stream length and machine."""

from repro.experiments.fig15_exponential_threshold import run

from _bench_utils import run_experiment


def test_fig15_exponential_threshold(benchmark, scale):
    table = run_experiment(benchmark, run, scale)
    speedup = table.column("speedup")
    # SAT never loses, and the advantage grows toward rare bursts.
    assert min(speedup) >= 1.0
    assert speedup[-1] > 2 * speedup[0]
    # The headline regime: a double-digit factor at the rarest setting.
    assert speedup[-1] >= 10.0
    # Density: the SAT thins out as bursts get rarer (paper Fig. 15c).
    density = table.column("density(SAT)")
    assert density[-1] <= density[0]
