"""Bench: Fig. 21 (Tables 3-4) — robustness to the training set."""

from repro.experiments.fig21_robustness import run

from _bench_utils import run_experiment


def test_fig21_robustness(benchmark, scale):
    table = run_experiment(benchmark, run, scale)
    for row in table.rows:
        _dataset, _setting, _maxw, _p, _step, is_ops, os_ops, ot_ops, _ = row
        # Paper: out-of-sample training performs about like in-sample
        # (the paper saw up to ~20% where statistics drifted; allow 60%
        # for the much shorter surrogate segments).
        assert os_ops <= is_ops * 1.6, row
        # Out-of-type training is allowed to be much worse — but the
        # structure must still be *correct*, just slower; it should not
        # be orders of magnitude off.
        assert ot_ops <= is_ops * 30, row
    # And OT should hurt on at least half the settings (it does in the
    # paper by factors of 2-3).
    worse = sum(1 for r in table.rows if r[7] > r[5] * 1.5)
    assert worse >= len(table.rows) // 2
