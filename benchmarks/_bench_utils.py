"""Helpers shared by the benchmark modules."""


def run_experiment(benchmark, run, scale):
    """Time one experiment sweep and print its reproduced table."""
    table = benchmark.pedantic(run, args=(scale,), rounds=1, iterations=1)
    print()
    print(table)
    return table
