"""Bench: Fig. 17 — histogram distributions of the data sets."""

from repro.experiments.fig17_histograms import ascii_histograms, run

from _bench_utils import run_experiment


def test_fig17_histograms(benchmark, scale):
    table = run_experiment(benchmark, run, scale)
    print()
    print(ascii_histograms(scale))
    sdss_fracs = [
        row[4] for row in table.rows if row[0] == "SDSS"
    ]
    ibm_fracs = [row[4] for row in table.rows if row[0] == "IBM"]
    # Paper Fig. 17a: SDSS is unimodal with an interior mode.
    mode = sdss_fracs.index(max(sdss_fracs))
    assert 0 < mode < len(sdss_fracs) - 1
    # Paper Fig. 17b: IBM concentrates nearly everything in bucket 1.
    assert ibm_fracs[0] > 0.9
    assert ibm_fracs[0] > 10 * max(ibm_fracs[1:])
