"""Bench: Table 6 — correlated stock bursts at multiple resolutions."""

import math

from repro.experiments.table6_stock_correlation import run

from _bench_utils import run_experiment


def test_table6_stock_correlation(benchmark, scale):
    table = run_experiment(benchmark, run, scale)
    purities = [
        row[3] for row in table.rows if not math.isnan(row[3])
    ]
    pair_counts = [row[2] for row in table.rows]
    # The pipeline must recover correlated pairs at some resolution...
    assert sum(pair_counts) > 0
    # ...and recovered pairs should be overwhelmingly same-sector (the
    # planted ground truth; market-wide events can add cross-sector
    # pairs, so demand a strong majority rather than purity 1.0).
    assert purities and min(purities) >= 0.5
    assert max(purities) >= 0.9
