"""Bench: the registered extension experiments (spatial/adaptive/max).

These reproduce no paper figure — they carry out the paper's §7 future
work and §6.1 related-work extensions, with exactness asserted inside
each experiment run.  The deeper spatial/adaptive workload studies live
in ``test_extension_spatial.py`` / ``test_extension_adaptive.py``.
"""

from repro.experiments.ext_adaptive import run as run_adaptive
from repro.experiments.ext_max_aggregate import run as run_max
from repro.experiments.ext_spatial import run as run_spatial

from _bench_utils import run_experiment


def test_ext_spatial_experiment(benchmark, scale):
    table = run_experiment(benchmark, run_spatial, scale)
    assert all(row[6] == "yes" for row in table.rows)  # outbreak found
    assert all(row[1] < row[2] for row in table.rows)  # adapted < grid


def test_ext_adaptive_experiment(benchmark, scale):
    table = run_experiment(benchmark, run_adaptive, scale)
    control, *drifted = table.rows
    assert control[4] == 0  # no retrain without drift
    assert control[3] == 1.0
    for row in drifted:
        assert row[4] >= 1  # drift triggers retraining
        assert row[3] > 1.0  # and adaptation pays


def test_ext_max_aggregate_experiment(benchmark, scale):
    table = run_experiment(benchmark, run_max, scale)
    for row in table.rows:
        assert row[1] < row[2] < row[3]  # SAT < SBT < naive