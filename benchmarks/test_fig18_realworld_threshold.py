"""Bench: Fig. 18 — burst-probability sweep on the real-world surrogates."""

from repro.experiments.fig18_realworld_threshold import run

from _bench_utils import run_experiment


def test_fig18_realworld_threshold(benchmark, scale):
    table = run_experiment(benchmark, run, scale)
    for dataset in ("SDSS", "IBM"):
        rows = [r for r in table.rows if r[0] == dataset]
        sat = [r[2] for r in rows]
        speedup = [r[4] for r in rows]
        # Paper: SAT cost falls as p shrinks (rows ordered big p -> small).
        assert sat[-1] < sat[0], dataset
        # Paper: ~2-5x overall speedup on these data sets; require at
        # least 2x at the rare-burst end.
        assert speedup[-1] >= 2.0, dataset
        assert min(speedup) >= 1.0, dataset
