"""Bench: Fig. 13 — exponential beta sweep (no effect of beta)."""

from repro.experiments.fig13_exponential_beta import run

from _bench_utils import run_experiment


def test_fig13_exponential_beta(benchmark, scale):
    table = run_experiment(benchmark, run, scale)
    sat = table.column("ops(SAT)")
    sbt = table.column("ops(SBT)")
    # Paper shape: beta has no noticeable effect — the cost spread across
    # the whole sweep stays within a small band.
    assert max(sat) <= min(sat) * 1.3
    assert max(sbt) <= min(sbt) * 1.3
    # And the SAT beats the SBT throughout.
    assert all(s < b for s, b in zip(sat, sbt))
