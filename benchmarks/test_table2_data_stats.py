"""Bench: Table 2 — data set statistics (surrogate calibration)."""

from repro.experiments.table2_data_stats import PAPER_STATS, run

from _bench_utils import run_experiment


def test_table2_data_stats(benchmark, scale):
    table = run_experiment(benchmark, run, scale)
    rows = {
        (row[0], row[1]): row for row in table.rows
    }  # (dataset, which) -> row
    sdss = rows[("SDSS", "simulated")]
    # SDSS surrogate: mean and std near Table 2 (moderate bands — the
    # segment is far shorter than the original year).
    assert abs(sdss[3] - PAPER_STATS["SDSS"]["mean"]) < 15
    assert abs(sdss[4] - PAPER_STATS["SDSS"]["std"]) < 15
    ibm = rows[("IBM", "simulated")]
    # IBM surrogate: the regime is extreme skew — std several times mean.
    assert ibm[4] > 4 * ibm[3]
    assert ibm[5] == 0.0  # zero floor (nights/weekends)
