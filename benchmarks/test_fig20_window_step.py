"""Bench: Fig. 20 — window-size-step sweep on the surrogates."""

from repro.experiments.fig20_window_step import run

from _bench_utils import run_experiment


def test_fig20_window_step(benchmark, scale):
    table = run_experiment(benchmark, run, scale)
    for dataset in ("SDSS", "IBM"):
        rows = [r for r in table.rows if r[0] == dataset]
        sat = [r[3] for r in rows]
        sbt = [r[4] for r in rows]
        # Paper: sparser size sets (rows ordered step 1 -> 120) make both
        # structures cheaper...
        assert sat[-1] < sat[0], dataset
        assert sbt[-1] < sbt[0], dataset
        # ...and the SAT stays ahead everywhere.
        assert all(s < b for s, b in zip(sat, sbt)), dataset
