"""Stock burst-correlation mining — the paper's §5.4 application.

Generates a simulated stock universe with planted sector co-bursts,
detects per-stock trading-volume bursts at multiple time resolutions with
adapted Shifted Aggregation Trees, correlates the burst indicator strings,
and prints the Table 6-style report of highly-correlated groups — then
scores the recovered pairs against the planted ground truth.

Run:  python examples/stock_burst_correlation.py
"""

from repro.mining import mine_burst_correlations
from repro.streams.correlated import StockUniverse

STREAM_SECONDS = 100_000
WINDOW_SIZES = (10, 30, 60, 300)
BURST_PROBABILITY = 1e-7


def main() -> None:
    universe = StockUniverse(seed=2003)
    print(
        f"Universe: {len(universe.tickers)} tickers in "
        f"{len(universe.sectors)} sectors; {STREAM_SECONDS:,d} seconds"
    )
    data, events = universe.generate(STREAM_SECONDS)
    by_kind = {}
    for event in events:
        by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
    print(f"Planted events: {by_kind}")

    reports = mine_burst_correlations(
        data,
        window_sizes=WINDOW_SIZES,
        burst_probability=BURST_PROBABILITY,
    )

    print("\nHighly-correlated stocks at different resolutions (Table 6):")
    for report in reports:
        print(f"  {report}")

    print("\nRecovered pairs vs planted sector structure:")
    for report in reports:
        pairs = list(report.pair_correlations)
        if not pairs:
            continue
        same = sum(
            universe.sector_of(a) == universe.sector_of(b) for a, b in pairs
        )
        print(
            f"  {report.window_size:>4d}s: {len(pairs):>3d} pairs, "
            f"{same}/{len(pairs)} same-sector"
        )


if __name__ == "__main__":
    main()
