"""Elastic burst detection for gamma-ray-like photon counts.

The paper's astrophysics motivation: "interesting gamma ray bursts could
last several seconds, several minutes or even several days.  The size
itself may be an interesting subject to be discovered."  This example
plants events of *very different durations* (and intensities scaled so
that each is only detectable near its own time scale) into a photon-count
stream, then shows that one elastic detector pass finds each event at
approximately its true duration — the core capability single-window
detectors lack.

Run:  python examples/gamma_ray_scan.py
"""

import numpy as np

from repro import ChunkedDetector, NormalThresholds, all_sizes, train_structure
from repro.streams.generators import planted_burst_stream, poisson_stream

MAX_WINDOW = 1_024
BURST_PROBABILITY = 1e-8
BACKGROUND_RATE = 4.0

#: (start, duration, extra photons per tick).  Intensities chosen so each
#: event is a few sigma over threshold at its own duration but invisible
#: at durations far from it: long faint events need long windows.
EVENTS = [
    (20_000, 8, 14.0),  # a short, bright flash
    (60_000, 128, 1.9),  # a minutes-scale transient
    (120_000, 700, 0.75),  # a long, faint afterglow
]


def main() -> None:
    rng = np.random.default_rng(1054)  # the Crab supernova's year
    background = poisson_stream(BACKGROUND_RATE, 200_000, seed=rng)
    data, applied = planted_burst_stream(background, EVENTS)

    train = poisson_stream(BACKGROUND_RATE, 20_000, seed=rng)
    thresholds = NormalThresholds.from_data(
        train, BURST_PROBABILITY, all_sizes(MAX_WINDOW)
    )
    structure = train_structure(train, thresholds)
    print(
        f"Scanning {data.size:,d} ticks across window sizes 1..{MAX_WINDOW} "
        f"({structure.num_levels}-level adapted SAT)\n"
    )

    detector = ChunkedDetector(structure, thresholds)
    bursts = detector.detect(data)

    for start, duration, extra in applied:
        # Bursts overlapping the injected event.
        hits = [
            b
            for b in bursts
            if b.start <= start + duration - 1 and b.end >= start
        ]
        if not hits:
            print(
                f"event @{start} (duration {duration}): MISSED — "
                "intensity below the detection threshold"
            )
            continue
        best = max(hits, key=lambda b: b.value - thresholds.threshold(b.size))
        sizes = sorted({b.size for b in hits})
        print(
            f"event @{start:>7,d} duration {duration:>5d} "
            f"(+{extra:g}/tick): detected at {len(hits)} window(s), "
            f"sizes {sizes[0]}..{sizes[-1]}; strongest at size "
            f"{best.size} — duration recovered within a factor of "
            f"{max(best.size / duration, duration / best.size):.1f}"
        )

    false_alarms = [
        b
        for b in bursts
        if not any(
            b.start <= s + d - 1 and b.end >= s for s, d, _ in applied
        )
    ]
    print(
        f"\n{len(bursts)} burst windows total, "
        f"{len(false_alarms)} outside any injected event "
        f"(target rate {BURST_PROBABILITY:g})"
    )

    # Collapse the overlapping window reports into events.
    from repro.mining import burst_episodes

    episodes = burst_episodes(bursts, thresholds, gap=MAX_WINDOW // 4)
    print(f"collapsed into {len(episodes)} episodes:")
    for episode in episodes:
        print(f"  {episode}")
    print(
        f"cost: {detector.counters.total_operations:,d} ops "
        f"({detector.counters.total_operations / data.size:.1f}/point vs "
        f"{2 * MAX_WINDOW} naive)"
    )


if __name__ == "__main__":
    main()
