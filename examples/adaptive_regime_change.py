"""Adaptive detection across a regime change (paper §7 future work).

A monitor trained on one traffic regime keeps running as the stream
drifts.  The static detector keeps its now-mistuned structure; the
adaptive detector notices the drift, retrains the structure on recent
data, and recovers its cost advantage — while reporting *exactly* the
same bursts (thresholds, and therefore semantics, never change).

Run:  python examples/adaptive_regime_change.py
"""

import numpy as np

from repro import (
    AdaptiveConfig,
    AdaptiveDetector,
    ChunkedDetector,
    NormalThresholds,
    all_sizes,
    train_structure,
)
from repro.streams.generators import exponential_stream

MAX_WINDOW = 128
BURST_PROBABILITY = 1e-4
SEGMENT_A = 60_000  # points before the regime change
SEGMENT_B = 200_000  # points after it — where adaptation pays


def main() -> None:
    # Regime A: heavy activity (scale 100); regime B: quiet (scale 55).
    a = exponential_stream(100.0, SEGMENT_A, seed=41)
    b = exponential_stream(55.0, SEGMENT_B, seed=42)
    stream = np.concatenate((a, b))
    train = a[:10_000]
    thresholds = NormalThresholds.from_data(
        train, BURST_PROBABILITY, all_sizes(MAX_WINDOW)
    )

    adaptive = AdaptiveDetector(
        thresholds,
        train,
        AdaptiveConfig(min_era_points=20_000, retrain_window=10_000),
    )
    adaptive_bursts = adaptive.detect(stream, chunk_size=8_192)

    static_structure = train_structure(train, thresholds)
    static = ChunkedDetector(static_structure, thresholds)
    static_bursts = static.detect(stream)

    assert adaptive_bursts == static_bursts, "semantics must be identical"
    print(f"{len(adaptive_bursts)} bursts (identical for both detectors)\n")

    print("Adaptive detector eras:")
    print(adaptive.describe())
    print(
        f"\ncost: adaptive {adaptive.total_operations():,d} ops vs static "
        f"{static.counters.total_operations:,d} ops "
        f"({static.counters.total_operations / adaptive.total_operations():.2f}x)"
    )
    retrains = [e for e in adaptive.eras[1:]]
    if retrains:
        first = retrains[0]
        print(
            f"first retrain at t={first.start:,d} "
            f"(drift began at t={SEGMENT_A:,d}) — reason: {first.reason}"
        )


if __name__ == "__main__":
    main()
