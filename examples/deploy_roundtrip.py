"""Deployment round trip: train once, persist, detect anywhere.

The operational workflow behind `python -m repro train/detect`: fit
thresholds and adapt a structure on a training stream, save the whole
configuration as one JSON spec, reload it in a "different process", and
run detection — verifying that the reloaded detector is burst-for-burst
identical to the original.

Run:  python examples/deploy_roundtrip.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import all_sizes
from repro.io import DetectorSpec, load_spec, save_spec
from repro.streams.generators import planted_burst_stream, poisson_stream

MAX_WINDOW = 128
BURST_PROBABILITY = 1e-6


def main() -> None:
    rng = np.random.default_rng(2006)  # the ICDE year
    train = poisson_stream(12.0, 20_000, seed=rng)

    print("Training a detector spec...")
    spec = DetectorSpec.train(
        train, BURST_PROBABILITY, all_sizes(MAX_WINDOW)
    )
    print(spec.describe())

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "burst-detector.json"
        save_spec(spec, path)
        print(f"\nsaved spec: {path.stat().st_size:,d} bytes of JSON")

        # ... ship the file; later, in production ...
        deployed = load_spec(path)

        live, _ = planted_burst_stream(
            poisson_stream(12.0, 80_000, seed=rng),
            [(30_000, 40, 9.0), (60_000, 6, 40.0)],
        )
        original = spec.build_detector().detect(live)
        reloaded = deployed.build_detector().detect(live)
        assert original == reloaded, "round trip must be exact"
        print(
            f"detection after reload: {len(reloaded)} bursts "
            f"(identical to the pre-save detector)"
        )
        for episode_start in (30_000, 60_000):
            hit = any(
                abs(b.end - episode_start) < 200 for b in reloaded
            )
            print(
                f"  injected event near t={episode_start:,d}: "
                f"{'detected' if hit else 'missed'}"
            )


if __name__ == "__main__":
    main()
