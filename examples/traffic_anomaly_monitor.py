"""Streaming web-traffic anomaly monitor (DDoS-style burst watch).

The paper's telecommunication motivation: "a large number of access
requests within a short period of time might indicate a Distributed
Denial of Service attack, worth closely monitoring."  This example runs
the detector the way a production monitor would: chunk by chunk over a
lazily generated request-rate stream (the SkyServer-traffic surrogate
with an injected attack), printing alerts as chunks arrive and reporting
the detection latency at the end.

Thresholds come from :class:`EmpiricalThresholds` rather than the normal
approximation: real request counts are overdispersed, and quantiles read
off training data respect the actual tail, which keeps quiet-period false
alerts rare.

Run:  python examples/traffic_anomaly_monitor.py
"""

import numpy as np

from repro import ChunkedDetector, EmpiricalThresholds, all_sizes, train_structure
from repro.streams.sdss import SDSSTrafficSimulator
from repro.streams.source import FunctionSource

MAX_WINDOW = 300  # watch every window from 1 s to 5 min
BURST_PROBABILITY = 1e-8
STREAM_SECONDS = 80_000
ATTACK_START = 50_000
ATTACK_SECONDS = 90
ATTACK_EXTRA_RPS = 160.0
CHUNK = 1_000  # the monitor wakes up once per ~17 simulated minutes


def main() -> None:
    simulator = SDSSTrafficSimulator(seed=9)

    def generate(start: int, count: int) -> np.ndarray:
        chunk = simulator.generate(count, start_second=start)
        lo = max(start, ATTACK_START)
        hi = min(start + count, ATTACK_START + ATTACK_SECONDS)
        if lo < hi:
            chunk[lo - start : hi - start] += ATTACK_EXTRA_RPS
        return chunk

    print("Training on one clean stretch of traffic...")
    train = simulator.generate(20_000, start_second=7 * 86_400)
    thresholds = EmpiricalThresholds(
        train, BURST_PROBABILITY, all_sizes(MAX_WINDOW)
    )
    structure = train_structure(train, thresholds)
    print(
        f"Adapted SAT: {structure.num_levels} levels, "
        f"density {structure.density():.5f}; "
        f"alert cadence (top shift) {structure.top.shift} s"
    )

    detector = ChunkedDetector(structure, thresholds)
    source = FunctionSource(generate, total=STREAM_SECONDS)
    attack_seen_at = None
    attack_burst = None
    for chunk in source.chunks(CHUNK):
        alerts = detector.process(chunk)
        if not alerts:
            continue
        earliest = min(alerts)
        print(
            f"  [after t={detector.length:>6d}] ALERT: {len(alerts):>6d} "
            f"burst window(s); earliest ends t={earliest.end} size "
            f"{earliest.size} ({earliest.value:,.0f} requests)"
        )
        if attack_seen_at is None:
            in_attack = [
                b
                for b in alerts
                if b.end >= ATTACK_START
                and b.start < ATTACK_START + ATTACK_SECONDS
            ]
            if in_attack:
                attack_seen_at = detector.length
                attack_burst = min(in_attack)
    detector.finish()

    print()
    if attack_seen_at is None:
        print("Attack not detected — raise ATTACK_EXTRA_RPS?")
        return
    print(
        f"Attack injected at t={ATTACK_START}..{ATTACK_START + ATTACK_SECONDS}; "
        f"first overlapping alert (window ending t={attack_burst.end}, size "
        f"{attack_burst.size}) raised after processing t={attack_seen_at}."
    )
    lag = attack_seen_at - attack_burst.end
    print(
        f"Report lag beyond the burst's own end: {lag} s of stream time — "
        f"bounded by the chunk size ({CHUNK}) plus the structure's top "
        f"shift ({structure.top.shift})."
    )
    ops = detector.counters.total_operations
    print(
        f"Total cost: {ops:,d} operations for {STREAM_SECONDS:,d} points "
        f"x {MAX_WINDOW} window sizes ({ops / STREAM_SECONDS:.1f} ops/point "
        f"vs {2 * MAX_WINDOW} for the naive monitor)."
    )


if __name__ == "__main__":
    main()
