"""A tour of how the adapted structure changes with the input.

The paper's central observation (§1.1): "we want a structure that adapts
to the input" — denser when bursts are rare-but-not-very-rare (filtering
pays), sparser when they are exceedingly rare (updating dominates).  This
example trains Shifted Aggregation Trees across burst probabilities and
data distributions and prints how density, bounding ratios and predicted
alarm probability respond, next to the fixed Shifted Binary Tree.

Run:  python examples/adaptive_structure_tour.py
"""

import numpy as np

from repro import (
    ChunkedDetector,
    NormalThresholds,
    all_sizes,
    level_alarm_probabilities,
    shifted_binary_tree,
    train_structure,
)
from repro.streams.generators import exponential_stream, poisson_stream

MAX_WINDOW = 250


def describe_structure(name, structure, thresholds, mu, sigma, data):
    detector = ChunkedDetector(structure, thresholds)
    detector.detect(data)
    ratios = structure.bounding_ratios()
    predicted = level_alarm_probabilities(structure, thresholds, mu, sigma)
    print(
        f"  {name:<22s} levels {structure.num_levels:>2d}  "
        f"density {structure.density(MAX_WINDOW):.5f}  "
        f"top bounding ratio {ratios[-1]:.2f}  "
        f"max predicted alarm {predicted.max():.3f}  "
        f"measured ops/pt {detector.counters.total_operations / data.size:6.1f}"
    )


def main() -> None:
    sizes = all_sizes(MAX_WINDOW)
    sbt = shifted_binary_tree(MAX_WINDOW)

    print("Exponential data, burst probability sweep (paper Fig. 15/16):")
    train = exponential_stream(100.0, 20_000, seed=1)
    data = exponential_stream(100.0, 60_000, seed=2)
    mu, sigma = float(train.mean()), float(train.std())
    for p in (1e-2, 1e-4, 1e-6, 1e-8):
        thresholds = NormalThresholds.from_data(train, p, sizes)
        sat = train_structure(train, thresholds)
        describe_structure(f"SAT p={p:g}", sat, thresholds, mu, sigma, data)
    thresholds = NormalThresholds.from_data(train, 1e-6, sizes)
    describe_structure("SBT (fixed)", sbt, thresholds, mu, sigma, data)

    print("\nPoisson data, lambda sweep (paper Fig. 12):")
    for lam in (0.01, 1.0, 100.0):
        train = poisson_stream(lam, 20_000, seed=3)
        data = poisson_stream(lam, 60_000, seed=4)
        thresholds = NormalThresholds.from_data(train, 1e-6, sizes)
        sat = train_structure(train, thresholds)
        mu, sigma = float(train.mean()), float(train.std())
        describe_structure(
            f"SAT lambda={lam:g}", sat, thresholds, mu, sigma, data
        )

    print(
        "\nReading: the SAT densifies exactly where alarms would be "
        "common (mid lambda, moderate p) and thins out when bursts are "
        "so rare that update cost dominates — the SBT cannot do either."
    )


if __name__ == "__main__":
    main()
