"""Spatial burst detection: finding a disease outbreak on a case map.

The paper's §7 proposes extending the aggregation-pyramid framework to
spatial burst detection (the setting of Neill & Moore's disease-cluster
work).  This example builds a sparse case-count grid with one planted
outbreak, adapts a spatial filter structure to training data, and finds
every square region — any size, any position — whose case count exceeds
its size's threshold, comparing the adapted structure against the fixed
half-overlapping grid and the naive per-size scan.

Run:  python examples/disease_outbreak_map.py
"""

import numpy as np

from repro.core.thresholds import all_sizes
from repro.spatial import (
    SpatialDetector,
    SpatialNormalThresholds,
    naive_spatial_detect,
    spatial_binary_structure,
    train_spatial_structure,
)

GRID = (256, 256)  # map tiles
BACKGROUND_RATE = 0.05  # expected cases per tile
MAX_REGION = 32  # search regions up to 32x32 tiles
BURST_PROBABILITY = 1e-6
OUTBREAK = (104, 62, 10)  # top-left row/col and side of the outbreak
OUTBREAK_RATE = 1.1


def main() -> None:
    rng = np.random.default_rng(1854)  # Broad Street
    train = rng.poisson(BACKGROUND_RATE, (160, 160)).astype(float)
    grid = rng.poisson(BACKGROUND_RATE, GRID).astype(float)
    r0, c0, side = OUTBREAK
    grid[r0 : r0 + side, c0 : c0 + side] += rng.poisson(
        OUTBREAK_RATE, (side, side)
    )

    thresholds = SpatialNormalThresholds.from_grid(
        train, BURST_PROBABILITY, all_sizes(MAX_REGION)
    )
    structure = train_spatial_structure(train, thresholds)
    print(
        f"Adapted spatial structure: {structure.num_levels} levels, "
        f"{structure.nodes_per_cell():.3f} filter boxes per tile"
    )

    detector = SpatialDetector(structure, thresholds)
    bursts = detector.detect(grid)
    print(f"\n{len(bursts)} burst regions found on the {GRID} map")
    if len(bursts):
        best = max(
            bursts, key=lambda b: b.value - thresholds.threshold(b.size)
        )
        print(
            f"strongest region: {best.size}x{best.size} at "
            f"({best.row}, {best.col}) with {best.value:.0f} cases "
            f"(threshold {thresholds.threshold(best.size):.1f})"
        )
        print(
            f"planted outbreak: {side}x{side} at ({r0}, {c0}) — "
            f"{'RECOVERED' if best.overlaps(type(best)(r0, c0, side, 0.0)) else 'missed'}"
        )
        outside = [
            b
            for b in bursts
            if not b.overlaps(type(b)(r0 - 2, c0 - 2, side + 4, 0.0))
        ]
        print(f"burst regions away from the outbreak: {len(outside)}")

    # Cost comparison.
    binary = SpatialDetector(spatial_binary_structure(MAX_REGION), thresholds)
    assert binary.detect(grid) == bursts
    naive_ops = 2 * grid.size * MAX_REGION
    adapted_ops = detector.counters.total_operations
    binary_ops = binary.counters.total_operations
    print(
        f"\ncost: adapted {adapted_ops:,d} ops | fixed grid "
        f"{binary_ops:,d} ops ({binary_ops / adapted_ops:.1f}x) | naive "
        f"~{naive_ops:,d} ops ({naive_ops / adapted_ops:.1f}x)"
    )
    assert naive_spatial_detect(grid, thresholds) == bursts


if __name__ == "__main__":
    main()
