"""Quickstart: detect bursts across 250 window sizes in four steps.

1. Fit thresholds to a training prefix for a target burst probability.
2. Adapt a Shifted Aggregation Tree to the data (state-space search).
3. Detect on the live stream.
4. Compare against the Shifted Binary Tree and the naive baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ChunkedDetector,
    NormalThresholds,
    all_sizes,
    naive_detect,
    naive_operation_count,
    shifted_binary_tree,
    train_structure,
)

MAX_WINDOW = 250
BURST_PROBABILITY = 1e-6


def main() -> None:
    rng = np.random.default_rng(7)
    train = rng.poisson(10.0, 20_000).astype(float)
    live = rng.poisson(10.0, 100_000).astype(float)
    # Sprinkle a real event in: 40 extra arrivals/sec for half a minute.
    live[60_000:60_030] += 40.0

    # 1. Thresholds: f(w) = w*mu + sqrt(w)*sigma*z for each size 1..250.
    thresholds = NormalThresholds.from_data(
        train, BURST_PROBABILITY, all_sizes(MAX_WINDOW)
    )

    # 2. Adapt the structure to this input.
    structure = train_structure(train, thresholds)
    print("Adapted structure:")
    print(structure.describe())

    # 3. Detect.
    detector = ChunkedDetector(structure, thresholds)
    bursts = detector.detect(live)
    print(f"\n{len(bursts)} bursts found; first few:")
    for burst in list(bursts)[:5]:
        print(
            f"  window [{burst.start:>6d}, {burst.end:>6d}] "
            f"size {burst.size:>3d}  aggregate {burst.value:,.0f} "
            f">= f({burst.size}) = {thresholds.threshold(burst.size):,.0f}"
        )

    # 4. Compare costs (operation counts — the paper's cost unit).
    sat_ops = detector.counters.total_operations
    sbt = ChunkedDetector(shifted_binary_tree(MAX_WINDOW), thresholds)
    assert sbt.detect(live) == bursts, "SBT must find the same bursts"
    sbt_ops = sbt.counters.total_operations
    naive_ops = naive_operation_count(live.size, MAX_WINDOW)
    assert naive_detect(live, thresholds) == bursts
    print(
        f"\ncost: SAT {sat_ops:,d} ops | SBT {sbt_ops:,d} ops "
        f"({sbt_ops / sat_ops:.1f}x) | naive {naive_ops:,d} ops "
        f"({naive_ops / sat_ops:.1f}x)"
    )


if __name__ == "__main__":
    main()
